//! Committed-queue extraction: a schedule's static execution
//! structure, reified for offline analysis.
//!
//! Every schedule ultimately commits each execution unit — a virtual
//! stage (flat and depth-expanded schedules) or a physical GPU
//! (composite schedules) — to a queue of ops. The executor consumes
//! those queues live; the static verifier (`hetpipe-verify`) instead
//! needs them *as data*, truncated to a finite horizon, so it can
//! build the dependency DAG, prove deadlock-freedom, and compute
//! structural occupancy bounds without running the DES. This module is
//! that extraction hook.
//!
//! The `ordered` flag records how strong the commitment is:
//! stream-order and composite schedules commit to the exact total
//! order of each queue, while arrival-FIFO schedules (the paper's
//! wave schedule) commit only to the per-kind subsequences — forwards
//! in minibatch order, backwards in minibatch order — and leave the
//! interleaving to dependency-arrival times. Analyses must not assume
//! more order than the executor enforces.

use crate::ops::{Dispatch, GpuOp, ScheduleOp};
use crate::recompute::RecomputePolicy;
use crate::schedules::PipelineSchedule;
use crate::wsp::WspParams;

/// Which execution unit a committed queue belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// One executor (virtual) stage's stream.
    Stage(usize),
    /// One physical GPU's composite stream (co-located chunks merged
    /// in schedule order).
    Gpu(usize),
}

/// One statically committed execution queue: the finite op prefix one
/// execution unit will perform, covering a verification horizon.
#[derive(Debug, Clone)]
pub struct CommittedQueue {
    /// The execution unit.
    pub kind: QueueKind,
    /// True when the executor commits to this exact total order
    /// (stream-order / composite dispatch); false when only the
    /// per-kind subsequences are committed (arrival-FIFO dispatch).
    pub ordered: bool,
    /// The ops, each tagged with its executor stage.
    pub ops: Vec<GpuOp>,
}

/// True when `op` is retained within a horizon of `max_mb`
/// minibatches: compute ops of minibatches `1..=max_mb`, plus the wave
/// decorations whose wave completes within the horizon (so every
/// retained gate's matching push is also retained — the queue set is
/// dependency-closed).
fn retained(op: &ScheduleOp, wsp: WspParams, max_mb: u64) -> bool {
    match *op {
        ScheduleOp::Forward { mb }
        | ScheduleOp::Backward { mb }
        | ScheduleOp::FusedFwdBwd { mb }
        | ScheduleOp::Recompute { mb } => mb <= max_mb,
        ScheduleOp::Push { wave } | ScheduleOp::PullGate { wave } => {
            wsp.last_of_wave(wave) <= max_mb
        }
    }
}

/// Pulls ops from `next` until the horizon is fully covered: every
/// stage in `stages` has emitted the backward of minibatch `max_mb`,
/// and (when virtual stage 0 is among them) every push of a wave
/// completing within the horizon has appeared. Returns the retained
/// ops. `budget` bounds the pull so a malformed stream cannot hang the
/// caller; the streams' own invariants keep real schedules far below
/// it.
fn pull_horizon(
    mut next: impl FnMut() -> GpuOp,
    stages: &[usize],
    wsp: WspParams,
    max_mb: u64,
    budget: usize,
) -> Vec<GpuOp> {
    let full_waves = max_mb / wsp.nm as u64;
    let mut bwd_done = vec![0u64; stages.len()];
    let mut pushes = 0u64;
    let decorated = stages.contains(&0);
    let mut ops = Vec::new();
    for _ in 0..budget {
        let done = bwd_done.iter().all(|&b| b >= max_mb) && (!decorated || pushes >= full_waves);
        if done {
            break;
        }
        let gop = next();
        match gop.op {
            ScheduleOp::Backward { mb } | ScheduleOp::FusedFwdBwd { mb } => {
                if let Some(slot) = stages.iter().position(|&s| s == gop.stage) {
                    bwd_done[slot] = bwd_done[slot].max(mb);
                }
            }
            ScheduleOp::Push { wave } if retained(&gop.op, wsp, max_mb) => {
                pushes = pushes.max(wave + 1);
            }
            _ => {}
        }
        if retained(&gop.op, wsp, max_mb) {
            ops.push(gop);
        }
    }
    ops
}

/// Extracts the committed queues of `sched` on a `k_gpus`-GPU virtual
/// worker, covering every compute op of minibatches `1..=max_mb` and
/// every wave decoration of the waves completing within that horizon.
///
/// Composite schedules ([`Dispatch::GpuStreamOrder`]) yield one
/// ordered queue per physical GPU; all other schedules yield one
/// queue per virtual stage, ordered iff the dispatch is
/// [`Dispatch::StreamOrder`]. Recompute placement follows
/// [`PipelineSchedule::recomputes_at`], exactly as the executor and
/// the validators apply it.
pub fn committed_queues(
    sched: &dyn PipelineSchedule,
    k_gpus: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    max_mb: u64,
) -> Vec<CommittedQueue> {
    let k = sched.virtual_stages(k_gpus);
    // Worst case per minibatch per stage: forward + recompute +
    // backward, plus two decorations per wave and stream warmup slack.
    let per_stage_budget = (max_mb as usize) * 4 + 4 * wsp.nm + 64;
    match sched.dispatch() {
        Dispatch::GpuStreamOrder => {
            let streams = sched
                .gpu_streams_with(k_gpus, wsp, recompute)
                .expect("GpuStreamOrder schedules declare composite streams");
            streams
                .into_iter()
                .enumerate()
                .map(|(gpu, mut stream)| {
                    let stages: Vec<usize> = (0..k).filter(|s| s % k_gpus == gpu).collect();
                    let budget = per_stage_budget * stages.len();
                    let ops = pull_horizon(
                        || stream.next().expect("composite streams are infinite"),
                        &stages,
                        wsp,
                        max_mb,
                        budget,
                    );
                    CommittedQueue {
                        kind: QueueKind::Gpu(gpu),
                        ordered: true,
                        ops,
                    }
                })
                .collect()
        }
        dispatch => {
            let ordered = dispatch == Dispatch::StreamOrder;
            (0..k)
                .map(|stage| {
                    let effective = if sched.recomputes_at(stage, k, wsp.nm, recompute) {
                        recompute
                    } else {
                        RecomputePolicy::None
                    };
                    let mut stream = sched.stream(stage, k, wsp).with_recompute(effective);
                    let ops = pull_horizon(
                        || GpuOp {
                            stage,
                            op: stream.next().expect("schedule streams are infinite"),
                        },
                        &[stage],
                        wsp,
                        max_mb,
                        per_stage_budget,
                    );
                    CommittedQueue {
                        kind: QueueKind::Stage(stage),
                        ordered,
                        ops,
                    }
                })
                .collect()
        }
    }
}

/// One pull gate's position in the stage-0 stream: how many stage-0
/// forwards the schedule commits to performing before blocking on the
/// parameter server for `wave`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatePoint {
    /// The wave the gate waits for.
    pub wave: u64,
    /// Stage-0 forwards committed before the gate. This is the VW's
    /// lookahead window: a per-VW engine may execute exactly this many
    /// stage-0 forwards (and everything they enable downstream) before
    /// it must synchronize with other VWs' pushes.
    pub forwards_before: u64,
}

/// One push's position in the stage-0 stream: how many stage-0
/// backwards precede the publication of `wave`'s aggregated update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushPoint {
    /// The wave being pushed.
    pub wave: u64,
    /// Stage-0 backwards committed before the push.
    pub backwards_before: u64,
}

/// The parameter-server interaction points of one VW's committed
/// queue set: every gate and push, positioned against the stage-0
/// compute stream. This is the raw material of `hetpipe-verify`'s
/// lookahead prover — the only places the future per-VW engine may
/// block on or signal other VWs.
#[derive(Debug, Clone, Default)]
pub struct PsInteractions {
    /// Pull gates in stream order.
    pub gates: Vec<GatePoint>,
    /// Pushes in stream order.
    pub pushes: Vec<PushPoint>,
}

/// Extracts the PS interaction points from a committed queue set. Wave
/// decorations live on the queue hosting virtual stage 0 (the
/// `Stage(0)` queue, or `Gpu(0)` for composite schedules); positions
/// count that queue's stage-0 forwards and backwards in committed
/// order — the order the executor consults when it blocks on a gate.
pub fn ps_interaction_points(queues: &[CommittedQueue]) -> PsInteractions {
    let mut out = PsInteractions::default();
    let Some(host) = queues
        .iter()
        .find(|q| matches!(q.kind, QueueKind::Stage(0) | QueueKind::Gpu(0)))
    else {
        return out;
    };
    let mut fwds = 0u64;
    let mut bwds = 0u64;
    for gop in &host.ops {
        match gop.op {
            ScheduleOp::PullGate { wave } => out.gates.push(GatePoint {
                wave,
                forwards_before: fwds,
            }),
            ScheduleOp::Push { wave } => out.pushes.push(PushPoint {
                wave,
                backwards_before: bwds,
            }),
            _ => {
                if gop.stage == 0 {
                    if gop.op.has_forward() {
                        fwds += 1;
                    }
                    if gop.op.has_backward() {
                        bwds += 1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedules::{FillDrain, HetPipeWave, Interleaved1F1B, OneFOneB};
    use std::collections::HashSet;

    fn schedules() -> Vec<Box<dyn PipelineSchedule>> {
        vec![
            Box::new(HetPipeWave),
            Box::new(FillDrain),
            Box::new(OneFOneB),
            Box::new(Interleaved1F1B {
                chunks: 2,
                composite: false,
            }),
            Box::new(Interleaved1F1B {
                chunks: 2,
                composite: true,
            }),
        ]
    }

    #[test]
    fn queues_cover_the_horizon_exactly_once() {
        // Every compute op of every minibatch in the horizon appears
        // exactly once across the queue set, on its own stage; nothing
        // beyond the horizon leaks in.
        for sched in schedules() {
            for k_gpus in [2usize, 4] {
                let k = sched.virtual_stages(k_gpus);
                let wsp = WspParams::new(4, 1);
                let max_mb = 12u64;
                for recompute in RecomputePolicy::ALL {
                    let queues = committed_queues(sched.as_ref(), k_gpus, wsp, recompute, max_mb);
                    let mut fwd: HashSet<(usize, u64)> = HashSet::new();
                    let mut bwd: HashSet<(usize, u64)> = HashSet::new();
                    for q in &queues {
                        for gop in &q.ops {
                            if let Some(mb) = gop.op.minibatch() {
                                assert!(mb <= max_mb, "{}: {gop:?} beyond horizon", sched.name());
                            }
                            if gop.op.has_forward() {
                                assert!(
                                    fwd.insert((gop.stage, gop.op.minibatch().unwrap())),
                                    "{}: duplicate forward {gop:?}",
                                    sched.name()
                                );
                            }
                            if gop.op.has_backward() {
                                assert!(
                                    bwd.insert((gop.stage, gop.op.minibatch().unwrap())),
                                    "{}: duplicate backward {gop:?}",
                                    sched.name()
                                );
                            }
                        }
                    }
                    for stage in 0..k {
                        for mb in 1..=max_mb {
                            assert!(
                                fwd.contains(&(stage, mb)),
                                "{}: forward of mb {mb} missing at stage {stage} \
                                 (k_gpus={k_gpus}, {recompute})",
                                sched.name()
                            );
                            assert!(
                                bwd.contains(&(stage, mb)),
                                "{}: backward of mb {mb} missing at stage {stage} \
                                 (k_gpus={k_gpus}, {recompute})",
                                sched.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn queue_set_is_dependency_closed_on_waves() {
        // Every retained pull gate's wave has its push retained too —
        // the closure the DAG builder relies on.
        for sched in schedules() {
            let wsp = WspParams::new(4, 0);
            let queues = committed_queues(sched.as_ref(), 4, wsp, RecomputePolicy::None, 16);
            let pushes: HashSet<u64> = queues
                .iter()
                .flat_map(|q| q.ops.iter())
                .filter_map(|g| match g.op {
                    ScheduleOp::Push { wave } => Some(wave),
                    _ => None,
                })
                .collect();
            for q in &queues {
                for gop in &q.ops {
                    if let ScheduleOp::PullGate { wave } = gop.op {
                        assert!(
                            pushes.contains(&wave),
                            "{}: gate of wave {wave} without its push",
                            sched.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ordered_flag_tracks_dispatch() {
        let wsp = WspParams::new(4, 0);
        let wave = committed_queues(&HetPipeWave, 4, wsp, RecomputePolicy::None, 8);
        assert!(wave.iter().all(|q| !q.ordered), "arrival-FIFO is unordered");
        assert_eq!(wave.len(), 4);
        let flat = committed_queues(&OneFOneB, 4, wsp, RecomputePolicy::None, 8);
        assert!(flat.iter().all(|q| q.ordered));
        assert!(flat
            .iter()
            .enumerate()
            .all(|(i, q)| q.kind == QueueKind::Stage(i)));
        let comp = committed_queues(
            &Interleaved1F1B {
                chunks: 2,
                composite: true,
            },
            4,
            wsp,
            RecomputePolicy::None,
            8,
        );
        assert_eq!(comp.len(), 4, "one composite queue per GPU");
        assert!(comp
            .iter()
            .enumerate()
            .all(|(g, q)| q.ordered && q.kind == QueueKind::Gpu(g)));
        // Composite queues carry only their own GPU's stages.
        for (g, q) in comp.iter().enumerate() {
            assert!(q.ops.iter().all(|op| op.stage % 4 == g));
        }
    }

    #[test]
    fn ps_points_follow_the_wsp_closed_form() {
        // Every schedule places gate(w) exactly before the first
        // stage-0 forward requiring wave w, and push(w) exactly after
        // the last backward of wave w — so the interaction points are
        // a closed-form function of (Nm, D), independent of schedule.
        for sched in schedules() {
            for (nm, d) in [(2usize, 0usize), (4, 1)] {
                let wsp = WspParams::new(nm, d);
                let max_mb = (nm as u64) * 8;
                let queues =
                    committed_queues(sched.as_ref(), 4, wsp, RecomputePolicy::None, max_mb);
                let pts = ps_interaction_points(&queues);
                assert!(
                    !pts.gates.is_empty(),
                    "{}: no gates extracted",
                    sched.name()
                );
                for (i, g) in pts.gates.iter().enumerate() {
                    assert_eq!(g.wave, i as u64, "{}: gates in wave order", sched.name());
                    assert_eq!(
                        g.forwards_before,
                        g.wave * nm as u64 + wsp.s_global() as u64 + 1,
                        "{}: gate({}) lookahead (nm={nm}, d={d})",
                        sched.name(),
                        g.wave
                    );
                }
                for (i, p) in pts.pushes.iter().enumerate() {
                    assert_eq!(p.wave, i as u64, "{}: pushes in wave order", sched.name());
                    assert_eq!(
                        p.backwards_before,
                        wsp.last_of_wave(p.wave),
                        "{}: push({}) position (nm={nm}, d={d})",
                        sched.name(),
                        p.wave
                    );
                }
            }
        }
    }

    #[test]
    fn extraction_matches_raw_streams() {
        // The per-stage extraction is the stream itself, filtered to
        // the horizon — no reordering, no loss.
        let wsp = WspParams::new(4, 1);
        let queues = committed_queues(&OneFOneB, 4, wsp, RecomputePolicy::BoundaryOnly, 10);
        for (stage, q) in queues.iter().enumerate() {
            let effective = if OneFOneB.recomputes_at(stage, 4, 4, RecomputePolicy::BoundaryOnly) {
                RecomputePolicy::BoundaryOnly
            } else {
                RecomputePolicy::None
            };
            let want: Vec<ScheduleOp> = OneFOneB
                .stream(stage, 4, wsp)
                .with_recompute(effective)
                .take(200)
                .filter(|op| retained(op, wsp, 10))
                .collect();
            let got: Vec<ScheduleOp> = q.ops.iter().map(|g| g.op).collect();
            assert_eq!(got, want[..got.len()], "stage {stage}");
        }
    }
}
