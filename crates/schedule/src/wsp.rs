//! WSP clock and staleness algebra (Sections 4–6 of the paper).
//!
//! A *wave* is the `Nm` minibatches a virtual worker processes
//! concurrently. A *clock* advances when a wave completes and its
//! aggregated update is pushed. WSP permits two kinds of staleness:
//!
//! - **local**: `s_local = Nm − 1` — within one pipeline, a minibatch
//!   may miss the updates of up to `s_local` predecessors;
//! - **global**: a virtual worker may run up to `D` clocks ahead of the
//!   slowest worker, giving
//!   `s_global = (D + 1)(s_local + 1) + s_local − 1` missing recent
//!   minibatches from other workers (Section 5).
//!
//! [`WspParams::required_wave`] is the executable form of the paper's
//! start condition: minibatch `p` may start only with weights covering
//! all global updates through minibatch `p − (s_global + 1)` — which,
//! because pushes are wave-granular, means the global clock must cover a
//! specific wave. Schedule streams (see [`crate::ScheduleStream`])
//! compile this gate into explicit [`crate::ScheduleOp::PullGate`] ops.

/// The static parameters of a WSP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WspParams {
    /// Number of minibatches concurrently in each pipeline (`Nm`).
    pub nm: usize,
    /// Maximum clock distance between the fastest and slowest virtual
    /// worker (`D`).
    pub d: usize,
}

impl WspParams {
    /// Creates WSP parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nm == 0`.
    pub fn new(nm: usize, d: usize) -> Self {
        assert!(nm >= 1, "a wave holds at least one minibatch");
        WspParams { nm, d }
    }

    /// Local staleness threshold `s_local = Nm − 1` (Section 4).
    pub fn s_local(&self) -> usize {
        self.nm - 1
    }

    /// Global staleness bound
    /// `s_global = (D + 1)(s_local + 1) + s_local − 1` (Section 5).
    ///
    /// # Examples
    ///
    /// ```
    /// use hetpipe_schedule::WspParams;
    /// // The paper's running example: D = 0, s_local = 3 gives
    /// // s_global = 6 (minibatch 11 may proceed missing updates from
    /// // minibatches 5..=10).
    /// assert_eq!(WspParams::new(4, 0).s_global(), 6);
    /// ```
    pub fn s_global(&self) -> usize {
        (self.d + 1) * (self.s_local() + 1) + self.s_local() - 1
    }

    /// The wave index a (1-indexed) minibatch belongs to.
    pub fn wave_of(&self, minibatch: u64) -> u64 {
        debug_assert!(minibatch >= 1, "minibatches are 1-indexed");
        (minibatch - 1) / self.nm as u64
    }

    /// First minibatch (1-indexed) of a wave.
    pub fn first_of_wave(&self, wave: u64) -> u64 {
        wave * self.nm as u64 + 1
    }

    /// Last minibatch (1-indexed) of a wave.
    pub fn last_of_wave(&self, wave: u64) -> u64 {
        (wave + 1) * self.nm as u64
    }

    /// The newest *wave* whose global updates minibatch `p` must see, or
    /// `None` if `p` has no global requirement (the initial
    /// `s_global + 1` minibatches run from `w0`).
    ///
    /// Derivation: `p` must reflect all updates through minibatch
    /// `q = p − (s_global + 1)`; pushes are atomic per wave, so this
    /// requires the full wave containing `q`, i.e. wave
    /// `floor((q − 1) / Nm)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetpipe_schedule::WspParams;
    /// let w = WspParams::new(4, 0);
    /// // Paper, Section 5: with D = 0, s_local = 3, minibatches 5..7
    /// // (wave 1) proceed without global updates, but minibatch 8 (the
    /// // wave's last) requires wave 0 from every worker.
    /// assert_eq!(w.required_wave(7), None);
    /// assert_eq!(w.required_wave(8), Some(0));
    /// // Minibatch 12 requires wave 1.
    /// assert_eq!(w.required_wave(12), Some(1));
    /// ```
    pub fn required_wave(&self, p: u64) -> Option<u64> {
        let sg = self.s_global() as u64;
        if p <= sg + 1 {
            return None;
        }
        let q = p - sg - 1;
        Some((q - 1) / self.nm as u64)
    }

    /// The wave a worker should have pulled after pushing wave `c` so
    /// that the next wave never stalls: `c − D` (Section 5: "it may
    /// need to wait for other virtual workers to push their updates
    /// upon completion of wave `c − D`"). `None` while `c < D`.
    pub fn pull_target_after_push(&self, c: u64) -> Option<u64> {
        c.checked_sub(self.d as u64)
    }

    /// Whether a worker with local clock `mine` may advance past a
    /// straggler with clock `slowest` (the distance-`D` rule).
    pub fn within_distance(&self, mine: u64, slowest: u64) -> bool {
        mine <= slowest + self.d as u64
    }

    /// The local weight version (as a wave index, −1 = the initial
    /// weights `w0`) that minibatch `p` reads under PipeDream-2BW
    /// double buffering: every minibatch of wave `c` computes on the
    /// version closed by wave `c − 1` — the *previous* buffer — so a
    /// stage pins at most one shadow copy beyond the freshest
    /// weights, instead of HetPipe's one stashed `w_p` per in-flight
    /// minibatch.
    ///
    /// `tests/staleness_props.rs` checks this version against
    /// [`WspParams::required_wave`]: the previous buffer is never
    /// older than the WSP start gate demands, so the 2BW cap cannot
    /// violate the staleness bound.
    pub fn two_bw_version(&self, p: u64) -> i64 {
        debug_assert!(p >= 1, "minibatches are 1-indexed");
        self.wave_of(p) as i64 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_formulas_match_paper() {
        // Nm = 4, D = 0: s_local = 3, s_global = 6 (Section 5 example).
        let w = WspParams::new(4, 0);
        assert_eq!(w.s_local(), 3);
        assert_eq!(w.s_global(), 6);
        // Nm = 4, D = 4: s_global = 5*4 + 3 - 1 = 22.
        let w = WspParams::new(4, 4);
        assert_eq!(w.s_global(), 22);
        // Nm = 1 (no pipelining), D = 0: the system degenerates to
        // per-minibatch BSP: s_local = 0, s_global = 0.
        let w = WspParams::new(1, 0);
        assert_eq!(w.s_local(), 0);
        assert_eq!(w.s_global(), 0);
    }

    #[test]
    fn wave_indexing() {
        let w = WspParams::new(4, 0);
        assert_eq!(w.wave_of(1), 0);
        assert_eq!(w.wave_of(4), 0);
        assert_eq!(w.wave_of(5), 1);
        assert_eq!(w.first_of_wave(2), 9);
        assert_eq!(w.last_of_wave(2), 12);
    }

    #[test]
    fn required_wave_matches_paper_example() {
        // Section 5 narrative with Nm = 4, D = 0: minibatch 11 proceeds
        // "without the global and/or local updates from wave 1
        // (minibatches 5 to 8) or the two local updates from 9 and 10.
        // However, it must have ... all the global updates from
        // minibatches 1 to 4."
        let w = WspParams::new(4, 0);
        assert_eq!(w.required_wave(11), Some(0));
        // Gate instants: last minibatch of each wave needs the wave
        // D + 1 behind it.
        assert_eq!(w.required_wave(8), Some(0));
        assert_eq!(w.required_wave(12), Some(1));
        assert_eq!(w.required_wave(16), Some(2));
        // With D = 1 everything shifts one wave later.
        let w = WspParams::new(4, 1);
        assert_eq!(w.s_global(), 10);
        assert_eq!(w.required_wave(11), None);
        assert_eq!(w.required_wave(12), Some(0));
        assert_eq!(w.required_wave(16), Some(1));
    }

    #[test]
    fn nm1_required_wave_is_bsp_like() {
        // Nm = 1, D = 0: minibatch p requires every preceding minibatch
        // globally — strict BSP cadence.
        let w = WspParams::new(1, 0);
        assert_eq!(w.required_wave(1), None);
        assert_eq!(w.required_wave(2), Some(0));
        assert_eq!(w.required_wave(3), Some(1));
    }

    #[test]
    fn pull_targets() {
        let w = WspParams::new(4, 2);
        assert_eq!(w.pull_target_after_push(0), None);
        assert_eq!(w.pull_target_after_push(1), None);
        assert_eq!(w.pull_target_after_push(2), Some(0));
        assert_eq!(w.pull_target_after_push(5), Some(3));
    }

    #[test]
    fn distance_rule() {
        let w = WspParams::new(4, 2);
        assert!(w.within_distance(0, 0));
        assert!(w.within_distance(2, 0));
        assert!(!w.within_distance(3, 0));
        assert!(w.within_distance(7, 5));
    }

    #[test]
    #[should_panic(expected = "at least one minibatch")]
    fn zero_nm_rejected() {
        let _ = WspParams::new(0, 0);
    }
}
