//! The [`PipelineSchedule`] trait and the concrete schedules.
//!
//! A schedule answers four questions about a `k`-stage pipeline
//! processing waves of `Nm` minibatches:
//!
//! 1. **What runs where, in what order?** — [`PipelineSchedule::stream`]
//!    yields each stage's infinite op sequence.
//! 2. **How are ready ops dispatched on a GPU?** —
//!    [`PipelineSchedule::dispatch`]: arrival-FIFO (the paper's
//!    condition 3) or strict stream order (how GPipe / PipeDream are
//!    defined).
//! 3. **How deep is the pipeline physically?** —
//!    [`PipelineSchedule::virtual_stages`]: interleaved schedules run
//!    `chunks` virtual stages per GPU.
//! 4. **What does it cost in memory?** —
//!    [`PipelineSchedule::max_in_flight`] (peak activation-holding
//!    minibatches per stage) and
//!    [`PipelineSchedule::extra_weight_versions`] (weight copies pinned
//!    by in-flight minibatches, the paper's `w_p` stashing).

use crate::ops::{Dispatch, GpuOp, ScheduleOp};
use crate::recompute::RecomputePolicy;
use crate::stream::{BasePattern, GpuStream, ScheduleStream};
use crate::wsp::WspParams;
use std::fmt;

/// A static pipeline schedule, reified as per-stage op streams plus
/// memory-accounting metadata.
///
/// `stage` and `k` are always in *executor* (virtual) stages: for
/// interleaved schedules, `k = chunks × GPUs` and stage `s` runs on
/// GPU `s % GPUs`.
pub trait PipelineSchedule {
    /// Short human-readable name (e.g. `"hetpipe-wave"`).
    fn name(&self) -> &'static str;

    /// The dispatch discipline stage GPUs use for ready ops.
    fn dispatch(&self) -> Dispatch;

    /// Whether the last stage fuses each minibatch's forward and
    /// backward into one task (Section 4 of the paper).
    fn fused_last_stage(&self) -> bool;

    /// Executor stages for a pipeline of `k_gpus` GPUs (interleaved
    /// schedules multiply by their chunk count).
    fn virtual_stages(&self, k_gpus: usize) -> usize {
        k_gpus
    }

    /// The infinite op stream of `stage` (0-based of `k`).
    ///
    /// For schedules that dispatch per-GPU composite streams
    /// ([`Dispatch::GpuStreamOrder`]) this is the per-stage
    /// *projection* used by stage-local analyses; the executor
    /// consumes [`PipelineSchedule::gpu_stream`] instead.
    fn stream(&self, stage: usize, k: usize, wsp: WspParams) -> ScheduleStream;

    /// The composite per-GPU op stream of physical GPU `gpu` (0-based
    /// of `k_gpus`): one ordered timeline merging every co-located
    /// virtual-stage chunk, each op tagged with its stage
    /// ([`GpuOp`]). `Some` exactly for schedules whose
    /// [`PipelineSchedule::dispatch`] is
    /// [`Dispatch::GpuStreamOrder`]; flat and depth-expanded
    /// schedules return `None` and are executed from their per-stage
    /// streams.
    fn gpu_stream(&self, gpu: usize, k_gpus: usize, wsp: WspParams) -> Option<GpuStream> {
        let _ = (gpu, k_gpus, wsp);
        None
    }

    /// [`PipelineSchedule::gpu_stream`] with the schedule's per-stage
    /// checkpoint decisions ([`PipelineSchedule::recomputes_at`])
    /// applied under `policy` — the constructor executors and
    /// validators use, so the stream's recompute placement is always
    /// the same decision the memory and cost models charge for.
    fn gpu_stream_with(
        &self,
        gpu: usize,
        k_gpus: usize,
        wsp: WspParams,
        policy: RecomputePolicy,
    ) -> Option<GpuStream> {
        let stream = self.gpu_stream(gpu, k_gpus, wsp)?;
        let k = self.virtual_stages(k_gpus);
        let remat = (0..k)
            .map(|s| self.recomputes_at(s, k, wsp.nm, policy))
            .collect();
        Some(stream.with_remat(remat))
    }

    /// The whole per-GPU composite stream set of one virtual worker
    /// (`k_gpus` handles) with the schedule's checkpoint decisions
    /// applied — what executors consume. The default assembles
    /// independent per-GPU streams; schedules with a joint timetable
    /// override it to fan all handles from **one shared** timetable
    /// ([`GpuStream::shared_set`]), so the slot simulation runs once
    /// per virtual worker instead of once per GPU. Each handle's op
    /// sequence is identical either way.
    fn gpu_streams_with(
        &self,
        k_gpus: usize,
        wsp: WspParams,
        policy: RecomputePolicy,
    ) -> Option<Vec<GpuStream>> {
        (0..k_gpus)
            .map(|gpu| self.gpu_stream_with(gpu, k_gpus, wsp, policy))
            .collect()
    }

    /// Peak number of minibatches simultaneously holding activations at
    /// `stage` — the quantity the per-stage memory constraint charges.
    ///
    /// This is a *sound, executor-enforced* bound, not an idealized
    /// one: the executor gates forward dispatch at each stage on this
    /// window (arrival-FIFO schedules) or executes the declared op
    /// stream in order (stream-order schedules), so a run can never
    /// hold more activation sets at a stage than the memory model
    /// charges for. Trace-measured occupancy ≤ this value is asserted
    /// as a first-class invariant (`hetpipe-core`'s occupancy audit).
    fn max_in_flight(&self, stage: usize, k: usize, nm: usize) -> usize;

    /// Weight versions pinned at `stage` beyond the resident
    /// weights/gradients/momentum set. The wave and 1F1B schedules
    /// stash the injection-time version `w_p` of every in-flight
    /// minibatch; fill-drain runs a whole wave on one version.
    fn extra_weight_versions(&self, stage: usize, k: usize, nm: usize) -> u64 {
        self.max_in_flight(stage, k, nm).saturating_sub(1) as u64
    }

    /// How many of this schedule's stages share one physical GPU
    /// (interleaved chunks; 1 for flat schedules). Memory feasibility
    /// checks split each GPU's budget across its co-located stages so
    /// that certified plans fit the *sum* of the chunks they place on
    /// a GPU.
    fn colocated_stages(&self) -> usize {
        1
    }

    /// Whether `stage` actually checkpoints under `policy`: activation
    /// recomputation is skipped where the in-flight window is 1 — a
    /// single stashed activation set is live during its own backward
    /// either way, so recomputing there spends a forward re-run and
    /// reclaims nothing (e.g. the last stage of stream-order
    /// schedules, which Megatron leaves un-checkpointed for free
    /// throughput) — and at fused last stages, whose activations are
    /// still live when the backward runs. Streams, the memory model,
    /// the cost model, and the executor all key their recompute terms
    /// on this per-stage decision rather than on the raw policy.
    fn recomputes_at(&self, stage: usize, k: usize, nm: usize, policy: RecomputePolicy) -> bool {
        policy.is_on()
            && self.max_in_flight(stage, k, nm) > 1
            && !(self.fused_last_stage() && stage == k - 1)
    }
}

/// The paper's Figure-1 wave schedule: up to `Nm` minibatches in
/// flight, arrival-FIFO service per GPU, forward+backward fused at the
/// last stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HetPipeWave;

impl PipelineSchedule for HetPipeWave {
    fn name(&self) -> &'static str {
        "hetpipe-wave"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::ArrivalFifo
    }

    fn fused_last_stage(&self) -> bool {
        true
    }

    fn stream(&self, stage: usize, k: usize, wsp: WspParams) -> ScheduleStream {
        let pattern = if stage == k - 1 {
            BasePattern::Fused
        } else {
            BasePattern::Interleave {
                warmup: self.max_in_flight(stage, k, wsp.nm) as u64,
            }
        };
        ScheduleStream::new(pattern, stage, wsp)
    }

    /// The sound arrival-FIFO bound: `Nm` at every non-last stage, 1 at
    /// the fused last stage.
    ///
    /// The paper's Figure-1 analysis suggests the tighter window
    /// `min(Nm, 2(k − 1 − q) + 1)` (a minibatch's activations live for
    /// `2(k − 1 − q) + 1` *uniform* task slots), but that bound only
    /// holds for perfectly balanced stages. Under arrival-order
    /// dispatch with real timing skew, forwards race ahead of
    /// backwards and a middle stage transiently holds up to `Nm` full
    /// activation sets — observed in simulation even on the paper's
    /// own ED/VGG-19 configuration. Since the executor's dispatch
    /// discipline (condition 3 of Section 4) is arrival order, the
    /// only sound per-stage charge that preserves that discipline is
    /// the pipeline-wide injection cap `Nm`; the executor's dispatch
    /// gate enforces exactly this window (and, being implied by the
    /// `Nm` injection gate, it never delays a wave-schedule task).
    /// [`RecomputePolicy::BoundaryOnly`] is the lever that buys the
    /// honestly-charged memory back.
    fn max_in_flight(&self, stage: usize, k: usize, nm: usize) -> usize {
        debug_assert!(stage < k, "stage index out of range");
        if stage == k - 1 {
            1
        } else {
            nm
        }
    }
}

/// GPipe-style fill-drain: all `Nm` forwards of a wave, a full drain of
/// `Nm` backwards, then the next wave. One weight version per wave.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillDrain;

impl PipelineSchedule for FillDrain {
    fn name(&self) -> &'static str {
        "fill-drain"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::StreamOrder
    }

    fn fused_last_stage(&self) -> bool {
        false
    }

    fn stream(&self, stage: usize, _k: usize, wsp: WspParams) -> ScheduleStream {
        ScheduleStream::new(BasePattern::FillDrain, stage, wsp)
    }

    /// Every stage accumulates the activations of the whole wave before
    /// the drain starts.
    fn max_in_flight(&self, stage: usize, k: usize, nm: usize) -> usize {
        debug_assert!(stage < k, "stage index out of range");
        nm
    }

    /// The whole wave runs on a single weight version — the flush
    /// between waves is what buys fill-drain its memory advantage.
    fn extra_weight_versions(&self, _stage: usize, _k: usize, _nm: usize) -> u64 {
        0
    }
}

/// PipeDream-style one-forward-one-backward: stage `q` warms up with
/// `min(Nm, k − q)` forwards, then strictly alternates backward and
/// forward, bounding in-flight work by pipeline depth instead of `Nm`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OneFOneB;

impl PipelineSchedule for OneFOneB {
    fn name(&self) -> &'static str {
        "1f1b"
    }

    fn dispatch(&self) -> Dispatch {
        Dispatch::StreamOrder
    }

    fn fused_last_stage(&self) -> bool {
        false
    }

    fn stream(&self, stage: usize, k: usize, wsp: WspParams) -> ScheduleStream {
        ScheduleStream::new(
            BasePattern::Interleave {
                warmup: self.max_in_flight(stage, k, wsp.nm) as u64,
            },
            stage,
            wsp,
        )
    }

    /// The classic 1F1B bound: stage `q` holds at most `k − q`
    /// in-flight minibatches (capped by `Nm` for shallow waves).
    fn max_in_flight(&self, stage: usize, k: usize, nm: usize) -> usize {
        debug_assert!(stage < k, "stage index out of range");
        nm.min(k - stage)
    }

    /// PipeDream-2BW double-buffered weight versioning: instead of
    /// stashing the injection-time version `w_p` of every in-flight
    /// minibatch (`in_flight − 1` extra copies, HetPipe's Section-4
    /// accounting), the stage keeps exactly **two** buffers — the
    /// freshest version and the previous one — and every in-flight
    /// minibatch reads the previous buffer. That caps the extra pinned
    /// copies at 1 whenever the stage pipelines at all (0 when the
    /// window is 1 and the resident weights suffice), at the price of
    /// a *fixed* one-wave staleness: a minibatch of wave `c` computes
    /// on the version closed by wave `c − 1`
    /// ([`WspParams::two_bw_version`]), which is never older than the
    /// WSP start gate requires (`tests/staleness_props.rs` checks this
    /// against [`WspParams::required_wave`] exhaustively).
    fn extra_weight_versions(&self, stage: usize, k: usize, nm: usize) -> u64 {
        (self.max_in_flight(stage, k, nm) > 1) as u64
    }
}

/// Interleaved 1F1B over virtual stage chunks (Megatron-LM's
/// interleaved schedule): the model is cut into `chunks × GPUs`
/// consecutive pieces assigned round-robin, so each GPU hosts
/// `chunks` non-adjacent virtual stages.
///
/// Two fidelity levels, selected by `composite`:
///
/// - **Composite per-GPU streams** (`composite: true`, the default,
///   and how Megatron-LM actually schedules): each physical GPU
///   executes one ordered [`GpuStream`] that merges its co-located
///   chunks in warmup/steady/drain chunk groups, so chunk 1's first
///   microbatches run *between* chunk 0's warmup forwards instead of
///   queueing behind them. The executor's `GpuStreamOrder` dispatch
///   path consumes these streams directly.
/// - **Depth-expanded 1F1B** (`composite: false`, kept behind this
///   flag so the fidelity delta stays measurable in
///   `schedule_compare`): each virtual stage runs a plain 1F1B
///   stream and co-located chunks share their GPU's FIFO timeline in
///   dependency-arrival order — during warmup the first chunk's
///   window is reserved ahead of the later chunks' first arrivals,
///   which is exactly the under-utilization the composite form fixes.
///
/// Either way, chunking multiplies the boundary activation/gradient
/// transfers by the chunk count, which on network-bound clusters can
/// outweigh the smaller per-chunk bubbles — the `schedule_compare`
/// sweep makes the trade-off visible. The per-stage memory bounds are
/// identical across the two forms (the composite stream's chunk
/// windows are capped at the same `min(Nm, K − stage)`), so plans
/// certify identically; only the GPU timeline order differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaved1F1B {
    /// Virtual stage chunks per GPU (≥ 1; 1 degenerates to plain 1F1B).
    pub chunks: usize,
    /// Composite per-GPU streams (true) or depth-expanded per-stage
    /// streams merged by arrival order (false).
    pub composite: bool,
}

impl Default for Interleaved1F1B {
    fn default() -> Self {
        Interleaved1F1B {
            chunks: 2,
            composite: true,
        }
    }
}

impl PipelineSchedule for Interleaved1F1B {
    fn name(&self) -> &'static str {
        if self.composite {
            "interleaved-1f1b"
        } else {
            "interleaved-1f1b-depth"
        }
    }

    fn dispatch(&self) -> Dispatch {
        if self.composite {
            Dispatch::GpuStreamOrder
        } else {
            Dispatch::StreamOrder
        }
    }

    fn fused_last_stage(&self) -> bool {
        false
    }

    fn virtual_stages(&self, k_gpus: usize) -> usize {
        self.chunks.max(1) * k_gpus
    }

    fn stream(&self, stage: usize, k: usize, wsp: WspParams) -> ScheduleStream {
        // Over virtual stages the per-stage pattern is 1F1B. In the
        // depth-expanded form this is the executed stream; in the
        // composite form it is the per-stage projection (the executor
        // consumes `gpu_stream`), kept for stage-local analyses.
        ScheduleStream::new(
            BasePattern::Interleave {
                warmup: self.max_in_flight(stage, k, wsp.nm) as u64,
            },
            stage,
            wsp,
        )
    }

    fn gpu_stream(&self, gpu: usize, k_gpus: usize, wsp: WspParams) -> Option<GpuStream> {
        if !self.composite {
            return None;
        }
        let chunks = self.chunks.max(1);
        let k = chunks * k_gpus;
        // The stream's structural windows ARE the declared bounds —
        // passed in so they cannot drift apart.
        let caps = (0..k)
            .map(|s| self.max_in_flight(s, k, wsp.nm) as u64)
            .collect();
        Some(GpuStream::new(gpu, k_gpus, chunks, wsp, caps))
    }

    /// One **shared** joint timetable per virtual worker, fanned into
    /// the `k_gpus` per-GPU handles — cuts the slot simulation from
    /// G× (independent replays) to 1× without changing any handle's
    /// op sequence.
    fn gpu_streams_with(
        &self,
        k_gpus: usize,
        wsp: WspParams,
        policy: RecomputePolicy,
    ) -> Option<Vec<GpuStream>> {
        if !self.composite {
            return None;
        }
        let chunks = self.chunks.max(1);
        let k = chunks * k_gpus;
        let caps = (0..k)
            .map(|s| self.max_in_flight(s, k, wsp.nm) as u64)
            .collect();
        let remat = (0..k)
            .map(|s| self.recomputes_at(s, k, wsp.nm, policy))
            .collect();
        Some(GpuStream::shared_set(k_gpus, chunks, wsp, caps, remat))
    }

    /// The 1F1B bound over *virtual* depth — deep in-flight windows
    /// are what let the expanded pipeline stay full across its
    /// (chunk-multiplied) boundary transfers. The composite stream's
    /// per-chunk windows are capped at exactly this bound, so the
    /// declared charge is sound for both forms.
    fn max_in_flight(&self, stage: usize, k: usize, nm: usize) -> usize {
        debug_assert!(stage < k, "stage index out of range");
        nm.min(k - stage)
    }

    /// Per-chunk PipeDream-2BW double buffering, the same rule
    /// [`OneFOneB::extra_weight_versions`] uses: each *virtual stage*
    /// keeps the freshest buffer plus at most one previous buffer,
    /// instead of stashing the injection-time `w_p` of every in-flight
    /// minibatch. `verify::interleaved_chunk_versions` proves this
    /// WSP-sound chunk by chunk (the previous buffer is never older
    /// than the start gate requires, at any depth), so the declared
    /// memory charge drops from `in_flight − 1` to at most 1 extra
    /// copy per busy chunk — the saving the whimpy `Max_m` cells in
    /// `schedule_compare` inherit.
    fn extra_weight_versions(&self, stage: usize, k: usize, nm: usize) -> u64 {
        (self.max_in_flight(stage, k, nm) > 1) as u64
    }

    fn colocated_stages(&self) -> usize {
        self.chunks.max(1)
    }
}

/// The configuration-level schedule knob.
///
/// A `Copy` enum so `SystemConfig` stays `Clone` and CLI sweeps are
/// cheap; delegates every [`PipelineSchedule`] method to the concrete
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// The paper's wave schedule ([`HetPipeWave`]). The default.
    #[default]
    HetPipeWave,
    /// GPipe fill-drain ([`FillDrain`]).
    FillDrain,
    /// PipeDream 1F1B ([`OneFOneB`]).
    OneFOneB,
    /// Interleaved 1F1B with virtual-stage chunks
    /// ([`Interleaved1F1B`]).
    Interleaved1F1B {
        /// Virtual stage chunks per GPU.
        chunks: usize,
        /// Composite per-GPU streams (Megatron's actual dispatch
        /// order) vs the depth-expanded arrival-merged variant.
        composite: bool,
    },
}

impl Schedule {
    /// Every schedule in its default configuration (interleaved with
    /// 2 chunks, in both its depth-expanded and composite forms), for
    /// sweeps.
    pub const ALL: [Schedule; 5] = [
        Schedule::HetPipeWave,
        Schedule::FillDrain,
        Schedule::OneFOneB,
        Schedule::Interleaved1F1B {
            chunks: 2,
            composite: false,
        },
        Schedule::Interleaved1F1B {
            chunks: 2,
            composite: true,
        },
    ];

    /// Parses a CLI name: `hetpipe-wave` | `fill-drain` | `1f1b` |
    /// `interleaved-1f1b[:chunks]` (composite) |
    /// `interleaved-1f1b-depth[:chunks]` (depth-expanded).
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "hetpipe-wave" | "wave" | "hetpipe" => Some(Schedule::HetPipeWave),
            "fill-drain" | "gpipe" => Some(Schedule::FillDrain),
            "1f1b" | "pipedream" => Some(Schedule::OneFOneB),
            "interleaved-1f1b" | "interleaved" => Some(Schedule::Interleaved1F1B {
                chunks: 2,
                composite: true,
            }),
            "interleaved-1f1b-depth" | "interleaved-depth" => Some(Schedule::Interleaved1F1B {
                chunks: 2,
                composite: false,
            }),
            _ => {
                if let Some(rest) = s
                    .strip_prefix("interleaved-1f1b-depth:")
                    .or_else(|| s.strip_prefix("interleaved-depth:"))
                {
                    let chunks: usize = rest.parse().ok().filter(|&c| c >= 1)?;
                    return Some(Schedule::Interleaved1F1B {
                        chunks,
                        composite: false,
                    });
                }
                let rest = s
                    .strip_prefix("interleaved-1f1b:")
                    .or_else(|| s.strip_prefix("interleaved:"))?;
                let chunks: usize = rest.parse().ok().filter(|&c| c >= 1)?;
                Some(Schedule::Interleaved1F1B {
                    chunks,
                    composite: true,
                })
            }
        }
    }

    /// Runs `f` against the concrete implementation on the stack —
    /// no allocation, because delegated methods sit in the partition
    /// DP's hot path (`O(k·L²)` memory-fit probes per solve).
    fn with_concrete<R>(&self, f: impl FnOnce(&dyn PipelineSchedule) -> R) -> R {
        match *self {
            Schedule::HetPipeWave => f(&HetPipeWave),
            Schedule::FillDrain => f(&FillDrain),
            Schedule::OneFOneB => f(&OneFOneB),
            Schedule::Interleaved1F1B { chunks, composite } => {
                f(&Interleaved1F1B { chunks, composite })
            }
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Interleaved1F1B { chunks, composite } => {
                if *composite {
                    write!(f, "interleaved-1f1b:{chunks}")
                } else {
                    write!(f, "interleaved-1f1b-depth:{chunks}")
                }
            }
            other => f.write_str(other.name()),
        }
    }
}

impl PipelineSchedule for Schedule {
    fn name(&self) -> &'static str {
        self.with_concrete(|s| s.name())
    }

    fn dispatch(&self) -> Dispatch {
        self.with_concrete(|s| s.dispatch())
    }

    fn fused_last_stage(&self) -> bool {
        self.with_concrete(|s| s.fused_last_stage())
    }

    fn virtual_stages(&self, k_gpus: usize) -> usize {
        self.with_concrete(|s| s.virtual_stages(k_gpus))
    }

    fn stream(&self, stage: usize, k: usize, wsp: WspParams) -> ScheduleStream {
        self.with_concrete(|s| s.stream(stage, k, wsp))
    }

    fn gpu_stream(&self, gpu: usize, k_gpus: usize, wsp: WspParams) -> Option<GpuStream> {
        self.with_concrete(|s| s.gpu_stream(gpu, k_gpus, wsp))
    }

    fn gpu_streams_with(
        &self,
        k_gpus: usize,
        wsp: WspParams,
        policy: RecomputePolicy,
    ) -> Option<Vec<GpuStream>> {
        self.with_concrete(|s| s.gpu_streams_with(k_gpus, wsp, policy))
    }

    fn max_in_flight(&self, stage: usize, k: usize, nm: usize) -> usize {
        self.with_concrete(|s| s.max_in_flight(stage, k, nm))
    }

    fn extra_weight_versions(&self, stage: usize, k: usize, nm: usize) -> u64 {
        self.with_concrete(|s| s.extra_weight_versions(stage, k, nm))
    }

    fn colocated_stages(&self) -> usize {
        self.with_concrete(|s| s.colocated_stages())
    }

    fn recomputes_at(&self, stage: usize, k: usize, nm: usize, policy: RecomputePolicy) -> bool {
        self.with_concrete(|s| s.recomputes_at(stage, k, nm, policy))
    }
}

/// Checks the structural invariants of a stream prefix — the
/// executable form of the paper's Section-4 scheduling conditions at
/// the schedule level:
///
/// 1. forwards appear in minibatch order with no gaps;
/// 2. backwards appear in minibatch order with no gaps;
/// 3. a minibatch's backward never precedes its forward (the
///    stage-local form of "no activation used before produced");
/// 4. fused ops appear only on the last stage, and only if the
///    schedule fuses;
/// 5. gates and pushes appear on stage 0 only, pushes strictly after
///    the wave's last backward, gates before the gated forward.
///
/// Returns `Err` with a description of the first violation.
pub fn validate_stream(
    sched: &dyn PipelineSchedule,
    stage: usize,
    k: usize,
    wsp: WspParams,
    prefix_len: usize,
) -> Result<(), String> {
    validate_stream_with(sched, stage, k, wsp, RecomputePolicy::None, prefix_len)
}

/// [`validate_stream`] for a stream decorated with a
/// [`RecomputePolicy`], adding the recompute invariants: at stages
/// that checkpoint ([`PipelineSchedule::recomputes_at`] — the policy
/// is on and the stage's window exceeds 1) every standalone backward
/// is *immediately* preceded by a [`ScheduleOp::Recompute`] of the
/// same minibatch (its forward already ran, its backward is next);
/// at all other stages — fused last stages, window-1 stages, or any
/// stage under `None` — no recompute op may appear at all.
pub fn validate_stream_with(
    sched: &dyn PipelineSchedule,
    stage: usize,
    k: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    prefix_len: usize,
) -> Result<(), String> {
    // The per-stage effective policy: window-1 stages skip
    // checkpointing (nothing to reclaim), so their streams carry no
    // recompute ops even when the run-wide policy is on.
    let recompute = if sched.recomputes_at(stage, k, wsp.nm, recompute) {
        recompute
    } else {
        RecomputePolicy::None
    };
    let ops: Vec<ScheduleOp> = sched
        .stream(stage, k, wsp)
        .with_recompute(recompute)
        .take(prefix_len)
        .collect();
    let mut next_fwd = 1u64;
    let mut next_bwd = 1u64;
    let mut in_flight = 0i64;
    let mut peak = 0i64;
    let mut pending_recompute: Option<u64> = None;
    for (i, op) in ops.iter().enumerate() {
        if pending_recompute.is_some() && !matches!(op, ScheduleOp::Backward { .. }) {
            return Err(format!(
                "{} stage {stage}: op {i} {op:?} intervenes between a recompute and its backward",
                sched.name()
            ));
        }
        match *op {
            ScheduleOp::Recompute { mb } => {
                if !recompute.is_on() {
                    return Err(format!(
                        "{} stage {stage}: recompute of {mb} with recomputation off",
                        sched.name()
                    ));
                }
                if mb != next_bwd || mb >= next_fwd {
                    return Err(format!(
                        "{} stage {stage}: recompute of {mb} out of place \
                         (next backward {next_bwd}, next forward {next_fwd})",
                        sched.name()
                    ));
                }
                pending_recompute = Some(mb);
            }
            ScheduleOp::Forward { mb } | ScheduleOp::FusedFwdBwd { mb } => {
                if mb != next_fwd {
                    return Err(format!(
                        "{} stage {stage}: op {i} forward mb {mb}, expected {next_fwd}",
                        sched.name()
                    ));
                }
                next_fwd += 1;
                in_flight += 1;
                peak = peak.max(in_flight);
                if matches!(op, ScheduleOp::FusedFwdBwd { .. }) {
                    if stage != k - 1 || !sched.fused_last_stage() {
                        return Err(format!(
                            "{} stage {stage}: fused op off the last stage",
                            sched.name()
                        ));
                    }
                    if mb != next_bwd {
                        return Err(format!(
                            "{} stage {stage}: fused backward out of order",
                            sched.name()
                        ));
                    }
                    next_bwd += 1;
                    in_flight -= 1;
                }
            }
            ScheduleOp::Backward { mb } => {
                if mb != next_bwd {
                    return Err(format!(
                        "{} stage {stage}: op {i} backward mb {mb}, expected {next_bwd}",
                        sched.name()
                    ));
                }
                if mb >= next_fwd {
                    return Err(format!(
                        "{} stage {stage}: backward of {mb} before its forward",
                        sched.name()
                    ));
                }
                if recompute.is_on() && pending_recompute != Some(mb) {
                    return Err(format!(
                        "{} stage {stage}: backward of {mb} without its recompute",
                        sched.name()
                    ));
                }
                pending_recompute = None;
                next_bwd += 1;
                in_flight -= 1;
            }
            ScheduleOp::Push { wave } => {
                if stage != 0 {
                    return Err(format!("{}: push off stage 0", sched.name()));
                }
                if next_bwd <= wsp.last_of_wave(wave) {
                    return Err(format!(
                        "{}: push of wave {wave} before its last backward",
                        sched.name()
                    ));
                }
            }
            ScheduleOp::PullGate { wave } => {
                if stage != 0 {
                    return Err(format!("{}: gate off stage 0", sched.name()));
                }
                // The gate must protect the next forward: it may not
                // come later than required.
                if let Some(req) = wsp.required_wave(next_fwd) {
                    if req > wave {
                        return Err(format!(
                            "{}: gate {wave} too stale for forward {next_fwd} (needs {req})",
                            sched.name()
                        ));
                    }
                }
            }
        }
    }
    // The declared memory bound must hold on the observed stream.
    let declared = sched.max_in_flight(stage, k, wsp.nm) as i64;
    if peak > declared {
        return Err(format!(
            "{} stage {stage}: observed in-flight {peak} exceeds declared {declared}",
            sched.name()
        ));
    }
    // Gates must actually precede every forward that needs them.
    let mut visible = -1i64;
    for op in &ops {
        match *op {
            ScheduleOp::PullGate { wave } => visible = visible.max(wave as i64),
            ScheduleOp::Forward { mb } | ScheduleOp::FusedFwdBwd { mb } if stage == 0 => {
                if let Some(req) = wsp.required_wave(mb) {
                    if (req as i64) > visible {
                        return Err(format!(
                            "{}: forward {mb} ungated (needs wave {req}, gated {visible})",
                            sched.name()
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Checks the structural invariants of a *composite per-GPU* stream
/// prefix — the per-GPU form of the Section-4 conditions plus the
/// chunk-group contract:
///
/// 1. every op's stage belongs to this GPU (`stage % GPUs == gpu`,
///    `stage < chunks × GPUs`);
/// 2. per stage: forwards in minibatch order with no gaps, backwards
///    likewise, no backward before its forward;
/// 3. per stage: structural occupancy (forwards emitted − backwards
///    emitted) never exceeds the declared
///    [`PipelineSchedule::max_in_flight`] — the charge the memory
///    model certifies;
/// 4. recompute ops appear exactly where
///    [`PipelineSchedule::recomputes_at`] says, immediately before
///    their backward;
/// 5. wave bookkeeping decorates virtual stage 0 only (so only GPU
///    0's stream), pushes strictly after the wave's last backward,
///    gates before the gated forward.
///
/// Returns `Err` with a description of the first violation, or if the
/// schedule declares no composite stream for this GPU.
pub fn validate_gpu_stream(
    sched: &dyn PipelineSchedule,
    gpu: usize,
    k_gpus: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    prefix_len: usize,
) -> Result<(), String> {
    let Some(stream) = sched.gpu_stream_with(gpu, k_gpus, wsp, recompute) else {
        return Err(format!(
            "{} declares no composite stream for gpu {gpu}",
            sched.name()
        ));
    };
    let k = sched.virtual_stages(k_gpus);
    let ops: Vec<GpuOp> = stream.take(prefix_len).collect();
    let mut next_fwd = vec![1u64; k];
    let mut next_bwd = vec![1u64; k];
    let mut pending_recompute: Option<(usize, u64)> = None;
    let mut visible = -1i64;
    for (i, gop) in ops.iter().enumerate() {
        let stage = gop.stage;
        if stage >= k || stage % k_gpus != gpu {
            return Err(format!(
                "{} gpu {gpu}: op {i} {gop:?} carries a foreign stage",
                sched.name()
            ));
        }
        if let Some((ps, pm)) = pending_recompute {
            if gop.op != (ScheduleOp::Backward { mb: pm }) || stage != ps {
                return Err(format!(
                    "{} gpu {gpu}: op {i} {gop:?} intervenes between a recompute \
                     and its backward (stage {ps} mb {pm})",
                    sched.name()
                ));
            }
        }
        match gop.op {
            ScheduleOp::Forward { mb } => {
                if mb != next_fwd[stage] {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: forward mb {mb}, expected {}",
                        sched.name(),
                        next_fwd[stage]
                    ));
                }
                if stage == 0 {
                    if let Some(req) = wsp.required_wave(mb) {
                        if req as i64 > visible {
                            return Err(format!(
                                "{}: forward {mb} ungated (needs wave {req}, gated {visible})",
                                sched.name()
                            ));
                        }
                    }
                }
                next_fwd[stage] += 1;
                let outstanding = next_fwd[stage] - next_bwd[stage];
                let declared = sched.max_in_flight(stage, k, wsp.nm) as u64;
                if outstanding > declared {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: structural occupancy {outstanding} \
                         exceeds declared {declared}",
                        sched.name()
                    ));
                }
            }
            ScheduleOp::Backward { mb } => {
                if mb != next_bwd[stage] {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: backward mb {mb}, expected {}",
                        sched.name(),
                        next_bwd[stage]
                    ));
                }
                if mb >= next_fwd[stage] {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: backward of {mb} before its forward",
                        sched.name()
                    ));
                }
                if sched.recomputes_at(stage, k, wsp.nm, recompute)
                    && pending_recompute != Some((stage, mb))
                {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: backward of {mb} without its recompute",
                        sched.name()
                    ));
                }
                pending_recompute = None;
                next_bwd[stage] += 1;
            }
            ScheduleOp::Recompute { mb } => {
                if !sched.recomputes_at(stage, k, wsp.nm, recompute) {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: recompute of {mb} at a stage \
                         that must not checkpoint",
                        sched.name()
                    ));
                }
                if mb != next_bwd[stage] || mb >= next_fwd[stage] {
                    return Err(format!(
                        "{} gpu {gpu} stage {stage}: recompute of {mb} out of place",
                        sched.name()
                    ));
                }
                pending_recompute = Some((stage, mb));
            }
            ScheduleOp::FusedFwdBwd { .. } => {
                return Err(format!(
                    "{} gpu {gpu}: composite streams never fuse (op {i})",
                    sched.name()
                ));
            }
            ScheduleOp::Push { wave } => {
                if stage != 0 {
                    return Err(format!("{}: push off stage 0", sched.name()));
                }
                if next_bwd[0] <= wsp.last_of_wave(wave) {
                    return Err(format!(
                        "{}: push of wave {wave} before its last backward",
                        sched.name()
                    ));
                }
            }
            ScheduleOp::PullGate { wave } => {
                if stage != 0 {
                    return Err(format!("{}: gate off stage 0", sched.name()));
                }
                visible = visible.max(wave as i64);
                if let Some(req) = wsp.required_wave(next_fwd[0]) {
                    if req > wave {
                        return Err(format!(
                            "{}: gate {wave} too stale for forward {} (needs {req})",
                            sched.name(),
                            next_fwd[0]
                        ));
                    }
                }
            }
        }
    }
    // Every chunk of this GPU must actually appear in the prefix.
    for c in 0..sched.colocated_stages() {
        let stage = c * k_gpus + gpu;
        if next_fwd[stage] == 1 {
            return Err(format!(
                "{} gpu {gpu}: chunk {c} (stage {stage}) emitted no work in {prefix_len} ops",
                sched.name()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedules() -> Vec<Box<dyn PipelineSchedule>> {
        vec![
            Box::new(HetPipeWave),
            Box::new(FillDrain),
            Box::new(OneFOneB),
            Box::new(Interleaved1F1B {
                chunks: 2,
                composite: false,
            }),
            Box::new(Interleaved1F1B {
                chunks: 2,
                composite: true,
            }),
        ]
    }

    #[test]
    fn all_streams_satisfy_invariants() {
        for sched in schedules() {
            for k_gpus in [1usize, 2, 4] {
                let k = sched.virtual_stages(k_gpus);
                for nm in [1usize, 2, 4, 7] {
                    for d in [0usize, 2] {
                        let wsp = WspParams::new(nm, d);
                        for recompute in RecomputePolicy::ALL {
                            for stage in 0..k {
                                validate_stream_with(sched.as_ref(), stage, k, wsp, recompute, 300)
                                    .unwrap_or_else(|e| {
                                        panic!("{e} (k_gpus={k_gpus} nm={nm} d={d} {recompute})")
                                    });
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wave_in_flight_is_the_sound_fifo_bound() {
        // k = 4, Nm = 4: every non-fused stage may transiently hold the
        // full injection window Nm under arrival-order dispatch; the
        // fused last stage holds exactly 1. (Figure 1's idealized
        // min(Nm, 2(k−1−q)+1) window only holds for perfectly balanced
        // stages and is NOT what the executor can guarantee.)
        assert_eq!(HetPipeWave.max_in_flight(0, 4, 4), 4);
        assert_eq!(HetPipeWave.max_in_flight(1, 4, 4), 4);
        assert_eq!(HetPipeWave.max_in_flight(2, 4, 4), 4);
        assert_eq!(HetPipeWave.max_in_flight(3, 4, 4), 1);
        assert_eq!(HetPipeWave.max_in_flight(0, 4, 100), 100);
        // Nm = 1 degenerates to naive model parallelism everywhere.
        for q in 0..4 {
            assert_eq!(HetPipeWave.max_in_flight(q, 4, 1), 1);
        }
    }

    #[test]
    fn memory_profiles_ranked_as_expected() {
        // Stage 0, deep pipeline: fill-drain and the wave schedule hold
        // the whole wave, 1F1B bounds holding by pipeline depth.
        let (k, nm) = (4, 8);
        assert_eq!(FillDrain.max_in_flight(0, k, nm), 8);
        assert_eq!(OneFOneB.max_in_flight(0, k, nm), 4);
        assert_eq!(HetPipeWave.max_in_flight(0, k, nm), 8);
        // Weight versions: fill-drain pins none beyond the resident
        // set; the wave schedule stashes one per extra in-flight
        // minibatch (the paper's w_p stashing); 1F1B double-buffers
        // (PipeDream-2BW) and pins exactly one shadow copy while
        // pipelining, none when the window is 1.
        assert_eq!(FillDrain.extra_weight_versions(0, k, nm), 0);
        assert_eq!(OneFOneB.extra_weight_versions(0, k, nm), 1);
        assert_eq!(OneFOneB.extra_weight_versions(k - 1, k, nm), 0);
        assert_eq!(HetPipeWave.extra_weight_versions(0, k, nm), 7);
    }

    #[test]
    fn two_bw_caps_1f1b_weight_versions_at_one() {
        for k in [1usize, 2, 4, 8] {
            for nm in [1usize, 2, 4, 16] {
                for stage in 0..k {
                    let extra = OneFOneB.extra_weight_versions(stage, k, nm);
                    assert!(extra <= 1, "2BW pins at most one shadow copy, got {extra}");
                    let pipelining = OneFOneB.max_in_flight(stage, k, nm) > 1;
                    assert_eq!(extra == 1, pipelining, "k={k} nm={nm} stage={stage}");
                }
            }
        }
    }

    #[test]
    fn interleaved_uses_per_chunk_two_bw_versions() {
        // Both interleaved forms declare the per-chunk 2BW rule that
        // `verify::interleaved_chunk_versions` proved WSP-sound: at
        // most one shadow copy per virtual stage, exactly where the
        // stage's window pipelines — never the old `w_p` stash of
        // `in_flight − 1` copies.
        for chunks in [2usize, 4] {
            for composite in [false, true] {
                let s = Interleaved1F1B { chunks, composite };
                for k_gpus in [2usize, 4] {
                    let k = s.virtual_stages(k_gpus);
                    for nm in [1usize, 4, 8] {
                        for stage in 0..k {
                            let extra = s.extra_weight_versions(stage, k, nm);
                            assert!(extra <= 1, "chunks={chunks} stage={stage}: got {extra}");
                            let pipelining = s.max_in_flight(stage, k, nm) > 1;
                            assert_eq!(extra == 1, pipelining, "chunks={chunks} stage={stage}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_expands_virtual_stages() {
        let s = Interleaved1F1B {
            chunks: 3,
            composite: true,
        };
        assert_eq!(s.virtual_stages(4), 12);
        assert_eq!(
            Schedule::Interleaved1F1B {
                chunks: 3,
                composite: true
            }
            .virtual_stages(4),
            12
        );
        assert_eq!(Schedule::HetPipeWave.virtual_stages(4), 4);
    }

    #[test]
    fn colocated_stages_counts_chunks() {
        assert_eq!(HetPipeWave.colocated_stages(), 1);
        assert_eq!(FillDrain.colocated_stages(), 1);
        assert_eq!(OneFOneB.colocated_stages(), 1);
        for composite in [false, true] {
            assert_eq!(
                Interleaved1F1B {
                    chunks: 3,
                    composite
                }
                .colocated_stages(),
                3
            );
            assert_eq!(
                Schedule::Interleaved1F1B {
                    chunks: 3,
                    composite
                }
                .colocated_stages(),
                3
            );
        }
    }

    #[test]
    fn enum_delegates_and_parses() {
        let wsp = WspParams::new(4, 0);
        for s in Schedule::ALL {
            assert_eq!(Schedule::parse(&s.to_string()), Some(s), "round-trip {s}");
            // Delegation agrees with the concrete impl on a sample.
            let k = s.virtual_stages(4);
            let a: Vec<_> = s.stream(0, k, wsp).take(50).collect();
            assert!(!a.is_empty());
        }
        assert_eq!(Schedule::parse("gpipe"), Some(Schedule::FillDrain));
        assert_eq!(
            Schedule::parse("interleaved-1f1b:4"),
            Some(Schedule::Interleaved1F1B {
                chunks: 4,
                composite: true
            })
        );
        assert_eq!(
            Schedule::parse("interleaved-1f1b-depth:4"),
            Some(Schedule::Interleaved1F1B {
                chunks: 4,
                composite: false
            })
        );
        assert_eq!(Schedule::parse("nope"), None);
        assert_eq!(Schedule::default(), Schedule::HetPipeWave);
    }

    #[test]
    fn dispatch_disciplines() {
        assert_eq!(HetPipeWave.dispatch(), Dispatch::ArrivalFifo);
        assert_eq!(FillDrain.dispatch(), Dispatch::StreamOrder);
        assert_eq!(OneFOneB.dispatch(), Dispatch::StreamOrder);
        assert_eq!(
            Interleaved1F1B::default().dispatch(),
            Dispatch::GpuStreamOrder
        );
        assert_eq!(
            Interleaved1F1B {
                chunks: 2,
                composite: false
            }
            .dispatch(),
            Dispatch::StreamOrder
        );
    }

    #[test]
    fn composite_streams_satisfy_invariants_across_grid() {
        // The per-GPU stream contract, checked over a wider grid than
        // any simulation covers: per-stage order, declared occupancy,
        // recompute placement, and wave decorations on GPU 0 only.
        for chunks in [1usize, 2, 3] {
            for k_gpus in [1usize, 2, 4] {
                let sched = Interleaved1F1B {
                    chunks,
                    composite: true,
                };
                for nm in [1usize, 2, 4, 7] {
                    for d in [0usize, 2] {
                        let wsp = WspParams::new(nm, d);
                        for recompute in RecomputePolicy::ALL {
                            for gpu in 0..k_gpus {
                                validate_gpu_stream(&sched, gpu, k_gpus, wsp, recompute, 400)
                                    .unwrap_or_else(|e| {
                                        panic!(
                                            "{e} (chunks={chunks} k_gpus={k_gpus} \
                                             nm={nm} d={d} {recompute})"
                                        )
                                    });
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn composite_warmup_interleaves_chunk_groups() {
        // The fidelity bug the composite stream exists to fix: with
        // nm > GPUs, the depth-expanded warmup emits chunk 0's whole
        // window before chunk 1's first microbatch, while the
        // composite stream switches to chunk 1 after one group of
        // min(GPUs, Nm) forwards.
        let (gpus, chunks, nm) = (4usize, 2usize, 6usize);
        let wsp = WspParams::new(nm, 0);
        let sched = Interleaved1F1B {
            chunks,
            composite: true,
        };
        let ops: Vec<GpuOp> = sched
            .gpu_stream(0, gpus, wsp)
            .expect("composite stream")
            .take(40)
            .collect();
        let first_chunk1 = ops
            .iter()
            .position(|g| g.stage == gpus && matches!(g.op, ScheduleOp::Forward { .. }))
            .expect("chunk 1 appears");
        let chunk0_before: usize = ops[..first_chunk1]
            .iter()
            .filter(|g| g.stage == 0 && matches!(g.op, ScheduleOp::Forward { .. }))
            .count();
        assert_eq!(
            chunk0_before, gpus,
            "warmup must hand over after one chunk group, not after \
             chunk 0's whole window: {ops:?}"
        );
    }

    #[test]
    fn composite_chunk1_degenerates_to_1f1b() {
        // One chunk per GPU: the composite stream must be plain 1F1B
        // (warmup forwards then strict alternation), matching the
        // per-stage stream's op sequence exactly.
        let wsp = WspParams::new(4, 0);
        let (gpus, gpu) = (4usize, 1usize);
        let composite: Vec<ScheduleOp> = Interleaved1F1B {
            chunks: 1,
            composite: true,
        }
        .gpu_stream(gpu, gpus, wsp)
        .expect("composite stream")
        .take(60)
        .map(|g| {
            assert_eq!(g.stage, gpu);
            g.op
        })
        .collect();
        let flat: Vec<ScheduleOp> = OneFOneB.stream(gpu, gpus, wsp).take(60).collect();
        assert_eq!(composite, flat);
    }

    #[test]
    fn shared_timetable_matches_independent_replays() {
        // The shared-set handles must emit exactly the op sequences of
        // per-GPU independent replays, for every GPU, chunk count,
        // recompute policy, and interleaved pull order — sharing the
        // timetable is a cost optimization, not a semantic change.
        for chunks in [1usize, 2, 3] {
            for k_gpus in [1usize, 2, 4] {
                let sched = Interleaved1F1B {
                    chunks,
                    composite: true,
                };
                for nm in [1usize, 4] {
                    let wsp = WspParams::new(nm, 1);
                    for recompute in RecomputePolicy::ALL {
                        let mut shared = sched
                            .gpu_streams_with(k_gpus, wsp, recompute)
                            .expect("composite set");
                        assert_eq!(shared.len(), k_gpus);
                        let mut solo: Vec<_> = (0..k_gpus)
                            .map(|g| {
                                sched
                                    .gpu_stream_with(g, k_gpus, wsp, recompute)
                                    .expect("composite stream")
                            })
                            .collect();
                        // Pull round-robin across the shared handles
                        // (the executor's consumption is interleaved
                        // too) and compare each against its solo
                        // replay pulled straight through.
                        let per_gpu = 120;
                        let mut got: Vec<Vec<GpuOp>> = vec![Vec::new(); k_gpus];
                        for _ in 0..per_gpu {
                            for (g, stream) in shared.iter_mut().enumerate() {
                                got[g].push(stream.next().unwrap());
                            }
                        }
                        for (g, stream) in solo.iter_mut().enumerate() {
                            let want: Vec<GpuOp> = stream.take(per_gpu).collect();
                            assert_eq!(
                                got[g], want,
                                "chunks={chunks} k_gpus={k_gpus} nm={nm} {recompute} gpu {g}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn composite_streams_are_deterministic() {
        let wsp = WspParams::new(4, 1);
        let s = Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let a: Vec<GpuOp> = s.gpu_stream(0, 4, wsp).unwrap().take(300).collect();
        let b: Vec<GpuOp> = s.gpu_stream(0, 4, wsp).unwrap().take(300).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn flat_schedules_have_no_gpu_streams() {
        let wsp = WspParams::new(4, 0);
        assert!(HetPipeWave.gpu_stream(0, 4, wsp).is_none());
        assert!(FillDrain.gpu_stream(0, 4, wsp).is_none());
        assert!(OneFOneB.gpu_stream(0, 4, wsp).is_none());
        assert!(Interleaved1F1B {
            chunks: 2,
            composite: false
        }
        .gpu_stream(0, 4, wsp)
        .is_none());
    }

    #[test]
    fn recomputes_at_skips_window_one_stages() {
        let on = RecomputePolicy::BoundaryOnly;
        // Stream-order schedules: the last stage's 1F1B window is 1 —
        // Megatron's free-throughput skip.
        assert!(OneFOneB.recomputes_at(0, 4, 4, on));
        assert!(!OneFOneB.recomputes_at(3, 4, 4, on));
        // The wave schedule's fused last stage never checkpoints; its
        // other stages do as long as Nm > 1.
        assert!(HetPipeWave.recomputes_at(0, 4, 4, on));
        assert!(!HetPipeWave.recomputes_at(3, 4, 4, on));
        assert!(!HetPipeWave.recomputes_at(0, 4, 1, on));
        // Policy off: never.
        assert!(!OneFOneB.recomputes_at(0, 4, 4, RecomputePolicy::None));
    }
}
