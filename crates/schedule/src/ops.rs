//! The schedule-op alphabet and dispatch disciplines.

/// One step of a stage's schedule.
///
/// Minibatches are 1-indexed (matching the paper's Figure 1); waves are
/// 0-indexed groups of `Nm` consecutive minibatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleOp {
    /// Run the forward pass of minibatch `mb` on this stage.
    Forward {
        /// The minibatch (1-indexed).
        mb: u64,
    },
    /// Run the backward pass of minibatch `mb` on this stage.
    Backward {
        /// The minibatch (1-indexed).
        mb: u64,
    },
    /// Run forward and backward of `mb` fused as one task (the paper's
    /// Section-4 optimization at the last stage of the wave schedule).
    FusedFwdBwd {
        /// The minibatch (1-indexed).
        mb: u64,
    },
    /// Re-run the stage's forward of `mb` from its stashed boundary
    /// input to rematerialize the intermediate activations, directly
    /// before `mb`'s backward (activation recomputation,
    /// [`crate::RecomputePolicy::BoundaryOnly`]). This is stage-local
    /// compute: it is *not* a pipeline forward and produces no boundary
    /// output for the next stage.
    Recompute {
        /// The minibatch (1-indexed) whose backward follows.
        mb: u64,
    },
    /// Push the aggregated update of `wave` to the parameter servers
    /// (emitted on stage 0 only, after the wave's last backward).
    Push {
        /// The completed wave (0-indexed).
        wave: u64,
    },
    /// Block until the local weights reflect the global updates of
    /// `wave` (the WSP start gate; emitted on stage 0 only, before the
    /// first forward that requires the wave).
    PullGate {
        /// The wave that must be visible (0-indexed).
        wave: u64,
    },
}

impl ScheduleOp {
    /// The minibatch a compute op refers to (`None` for the wave
    /// bookkeeping ops).
    pub fn minibatch(&self) -> Option<u64> {
        match self {
            ScheduleOp::Forward { mb }
            | ScheduleOp::Backward { mb }
            | ScheduleOp::FusedFwdBwd { mb }
            | ScheduleOp::Recompute { mb } => Some(*mb),
            ScheduleOp::Push { .. } | ScheduleOp::PullGate { .. } => None,
        }
    }

    /// True for ops that occupy the stage's GPU.
    pub fn is_compute(&self) -> bool {
        self.minibatch().is_some()
    }

    /// True if the op performs (or includes) a *pipeline* forward pass
    /// (one that produces boundary activations for the next stage).
    /// [`ScheduleOp::Recompute`] re-runs forward kernels but is
    /// stage-local, so it does not count.
    pub fn has_forward(&self) -> bool {
        matches!(
            self,
            ScheduleOp::Forward { .. } | ScheduleOp::FusedFwdBwd { .. }
        )
    }

    /// True if the op performs (or includes) a backward pass.
    pub fn has_backward(&self) -> bool {
        matches!(
            self,
            ScheduleOp::Backward { .. } | ScheduleOp::FusedFwdBwd { .. }
        )
    }
}

/// One step of a *per-GPU composite* schedule: a [`ScheduleOp`] tagged
/// with the executor (virtual) stage it belongs to.
///
/// Flat schedules key their streams by stage, so the stage is implied;
/// a composite per-GPU stream (Megatron-style interleaved chunk
/// groups) merges the ops of every virtual stage co-located on one
/// GPU into a single ordered timeline, so each op carries its stage —
/// the `gpu`/chunk-group dimension of the stream contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuOp {
    /// The executor (virtual) stage the op runs as. For a composite
    /// stream of GPU `g` in a `chunks × GPUs` pipeline this is
    /// `chunk × GPUs + g`.
    pub stage: usize,
    /// The op itself.
    pub op: ScheduleOp,
}

/// How a stage's GPU orders ops whose dependencies are satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Serve tasks first-come-first-served in dependency-arrival order
    /// (the paper's Section-4 condition 3). The op stream constrains
    /// *which* tasks exist and their per-kind order; the interleaving
    /// of forwards and backwards on the GPU follows arrival times.
    ArrivalFifo,
    /// Execute ops strictly in stream order: an op waits for its
    /// stream predecessor *and* its data dependency. This is how
    /// fill-drain and 1F1B are defined in the literature.
    StreamOrder,
    /// Execute each GPU's *composite* stream
    /// ([`crate::PipelineSchedule::gpu_stream`]) in strict order: the
    /// schedule decides how co-located virtual-stage chunks interleave
    /// on the GPU timeline (Megatron-style ordered chunk groups),
    /// instead of leaving the merge to dependency-arrival order.
    GpuStreamOrder,
}
