//! Deterministic, infinite per-stage op streams.
//!
//! A [`ScheduleStream`] is the schedule *as data*: the exact sequence
//! of [`ScheduleOp`]s one pipeline stage executes, decorated (on
//! stage 0) with the WSP wave bookkeeping — a [`ScheduleOp::Push`]
//! after the last backward of every wave and a
//! [`ScheduleOp::PullGate`] before the first forward that requires a
//! global wave. Streams are infinite iterators; executors pull ops on
//! demand and tests `take(n)` a prefix.

use crate::ops::ScheduleOp;
use crate::recompute::RecomputePolicy;
use crate::wsp::WspParams;
use std::collections::VecDeque;

/// The base compute pattern of a stream, before wave decoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BasePattern {
    /// `warmup` forwards, then strict backward/forward alternation
    /// (PipeDream 1F1B; also the steady-state shape of the HetPipe
    /// wave schedule at non-last stages).
    Interleave {
        /// Forwards executed before the first backward.
        warmup: u64,
    },
    /// All `Nm` forwards of a wave, then all `Nm` backwards (GPipe).
    FillDrain,
    /// Forward and backward of each minibatch fused as one task (the
    /// wave schedule's last stage).
    Fused,
}

/// An infinite, deterministic op stream for one pipeline stage.
#[derive(Debug, Clone)]
pub struct ScheduleStream {
    pattern: BasePattern,
    /// Wave bookkeeping (`Push` / `PullGate`) is emitted on stage 0
    /// only — pushes and pulls are per-virtual-worker, not per-stage.
    decorate: bool,
    /// When [`RecomputePolicy::BoundaryOnly`], every standalone
    /// backward is preceded by a [`ScheduleOp::Recompute`] of the same
    /// minibatch (fused tasks never need one).
    recompute: RecomputePolicy,
    wsp: WspParams,
    /// Forwards emitted so far (the next forward is `fwd_emitted + 1`).
    fwd_emitted: u64,
    /// Backwards emitted so far.
    bwd_emitted: u64,
    /// Newest wave already gated on (−1 = none), to emit each gate once.
    gated: i64,
    pending: VecDeque<ScheduleOp>,
}

impl ScheduleStream {
    pub(crate) fn new(pattern: BasePattern, stage: usize, wsp: WspParams) -> Self {
        ScheduleStream {
            pattern,
            decorate: stage == 0,
            recompute: RecomputePolicy::None,
            wsp,
            fwd_emitted: 0,
            bwd_emitted: 0,
            gated: -1,
            pending: VecDeque::new(),
        }
    }

    /// Returns this stream with the given recomputation policy: under
    /// [`RecomputePolicy::BoundaryOnly`] a [`ScheduleOp::Recompute`] is
    /// emitted immediately before every standalone backward. Must be
    /// applied before the first op is pulled.
    pub fn with_recompute(mut self, policy: RecomputePolicy) -> Self {
        debug_assert!(
            self.fwd_emitted == 0 && self.bwd_emitted == 0,
            "recompute policy must be set before the stream starts"
        );
        self.recompute = policy;
        self
    }

    /// Emits the gate for `p`'s required wave (once per wave) ahead of
    /// the forward of `p`.
    fn gate_before_forward(&mut self, p: u64) {
        if !self.decorate {
            return;
        }
        if let Some(w) = self.wsp.required_wave(p) {
            if w as i64 > self.gated {
                self.gated = w as i64;
                self.pending.push_back(ScheduleOp::PullGate { wave: w });
            }
        }
    }

    /// Emits the push after `p`'s backward when `p` closes a wave.
    fn push_after_backward(&mut self, p: u64) {
        if !self.decorate {
            return;
        }
        if p.is_multiple_of(self.wsp.nm as u64) {
            self.pending.push_back(ScheduleOp::Push {
                wave: p / self.wsp.nm as u64 - 1,
            });
        }
    }

    /// Emits the backward of `p` (with its recompute prefix when the
    /// policy calls for one) and the wave push that may follow it.
    fn emit_backward(&mut self, p: u64) {
        if self.recompute.is_on() {
            self.pending.push_back(ScheduleOp::Recompute { mb: p });
        }
        self.pending.push_back(ScheduleOp::Backward { mb: p });
        self.bwd_emitted = p;
        self.push_after_backward(p);
    }

    /// Generates the next base op (plus decorations) into `pending`.
    fn refill(&mut self) {
        let nm = self.wsp.nm as u64;
        match self.pattern {
            BasePattern::Fused => {
                let p = self.fwd_emitted + 1;
                self.gate_before_forward(p);
                self.pending.push_back(ScheduleOp::FusedFwdBwd { mb: p });
                self.fwd_emitted = p;
                self.bwd_emitted = p;
                self.push_after_backward(p);
            }
            BasePattern::Interleave { warmup } => {
                let outstanding = self.fwd_emitted - self.bwd_emitted;
                // A forward while the pipeline window has room (which
                // covers the initial warmup run of forwards), a
                // backward once it is full.
                if outstanding < warmup {
                    let p = self.fwd_emitted + 1;
                    self.gate_before_forward(p);
                    self.pending.push_back(ScheduleOp::Forward { mb: p });
                    self.fwd_emitted = p;
                } else {
                    self.emit_backward(self.bwd_emitted + 1);
                }
            }
            BasePattern::FillDrain => {
                let outstanding = self.fwd_emitted - self.bwd_emitted;
                // Fill while a wave is incomplete, drain it entirely
                // before touching the next wave.
                if outstanding < nm && self.bwd_emitted.is_multiple_of(nm) {
                    let p = self.fwd_emitted + 1;
                    self.gate_before_forward(p);
                    self.pending.push_back(ScheduleOp::Forward { mb: p });
                    self.fwd_emitted = p;
                } else {
                    self.emit_backward(self.bwd_emitted + 1);
                }
            }
        }
    }
}

impl Iterator for ScheduleStream {
    type Item = ScheduleOp;

    /// Always `Some`: schedules are infinite.
    fn next(&mut self) -> Option<ScheduleOp> {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(pattern: BasePattern, stage: usize, wsp: WspParams, n: usize) -> Vec<ScheduleOp> {
        ScheduleStream::new(pattern, stage, wsp).take(n).collect()
    }

    #[test]
    fn fill_drain_alternates_whole_waves() {
        use ScheduleOp::*;
        let got = ops(BasePattern::FillDrain, 1, WspParams::new(3, 0), 9);
        assert_eq!(
            got,
            vec![
                Forward { mb: 1 },
                Forward { mb: 2 },
                Forward { mb: 3 },
                Backward { mb: 1 },
                Backward { mb: 2 },
                Backward { mb: 3 },
                Forward { mb: 4 },
                Forward { mb: 5 },
                Forward { mb: 6 },
            ]
        );
    }

    #[test]
    fn interleave_warmup_then_1f1b() {
        use ScheduleOp::*;
        let got = ops(
            BasePattern::Interleave { warmup: 2 },
            1,
            WspParams::new(4, 0),
            8,
        );
        assert_eq!(
            got,
            vec![
                Forward { mb: 1 },
                Forward { mb: 2 },
                Backward { mb: 1 },
                Forward { mb: 3 },
                Backward { mb: 2 },
                Forward { mb: 4 },
                Backward { mb: 3 },
                Forward { mb: 5 },
            ]
        );
    }

    #[test]
    fn stage0_gets_push_and_gate_decorations() {
        let wsp = WspParams::new(2, 0); // s_global = 2: mb 4 requires wave 0.
        let got = ops(BasePattern::FillDrain, 0, wsp, 12);
        let pushes: Vec<_> = got
            .iter()
            .filter(|o| matches!(o, ScheduleOp::Push { .. }))
            .collect();
        let gates: Vec<_> = got
            .iter()
            .filter(|o| matches!(o, ScheduleOp::PullGate { .. }))
            .collect();
        assert!(!pushes.is_empty(), "stage 0 pushes waves: {got:?}");
        assert!(!gates.is_empty(), "stage 0 gates on waves: {got:?}");
        // The push of wave 0 appears right after Backward{2}.
        let b2 = got
            .iter()
            .position(|o| *o == ScheduleOp::Backward { mb: 2 })
            .unwrap();
        assert_eq!(got[b2 + 1], ScheduleOp::Push { wave: 0 });
        // The gate for wave 0 precedes Forward{4} (required_wave(4) = 0).
        let g = got
            .iter()
            .position(|o| *o == ScheduleOp::PullGate { wave: 0 })
            .unwrap();
        let f4 = got
            .iter()
            .position(|o| *o == ScheduleOp::Forward { mb: 4 })
            .unwrap();
        assert!(g < f4, "gate must precede the gated forward: {got:?}");
    }

    #[test]
    fn non_zero_stages_have_no_decorations() {
        for pattern in [
            BasePattern::FillDrain,
            BasePattern::Interleave { warmup: 3 },
            BasePattern::Fused,
        ] {
            let got = ops(pattern, 2, WspParams::new(2, 0), 40);
            assert!(
                got.iter().all(ScheduleOp::is_compute),
                "{pattern:?} stage 2 must be pure compute"
            );
        }
    }

    #[test]
    fn fused_stream_is_one_task_per_minibatch() {
        let got = ops(BasePattern::Fused, 3, WspParams::new(4, 0), 5);
        for (i, op) in got.iter().enumerate() {
            assert_eq!(*op, ScheduleOp::FusedFwdBwd { mb: i as u64 + 1 });
        }
    }

    #[test]
    fn recompute_precedes_every_standalone_backward() {
        use ScheduleOp::*;
        for pattern in [
            BasePattern::FillDrain,
            BasePattern::Interleave { warmup: 2 },
        ] {
            let got: Vec<ScheduleOp> = ScheduleStream::new(pattern, 1, WspParams::new(3, 0))
                .with_recompute(RecomputePolicy::BoundaryOnly)
                .take(60)
                .collect();
            let mut backwards = 0;
            for (i, op) in got.iter().enumerate() {
                if let Backward { mb } = op {
                    backwards += 1;
                    assert_eq!(
                        got[i - 1],
                        Recompute { mb: *mb },
                        "{pattern:?}: backward {mb} missing its recompute"
                    );
                }
            }
            assert!(backwards > 5, "{pattern:?} ran backwards");
            // Exactly one recompute per backward, no strays.
            let recomputes = got.iter().filter(|o| matches!(o, Recompute { .. })).count();
            // The tail may end on a Recompute whose Backward is cut off.
            assert!(recomputes == backwards || recomputes == backwards + 1);
        }
        // Fused tasks never recompute.
        let got: Vec<ScheduleOp> = ScheduleStream::new(BasePattern::Fused, 3, WspParams::new(3, 0))
            .with_recompute(RecomputePolicy::BoundaryOnly)
            .take(20)
            .collect();
        assert!(got.iter().all(|o| !matches!(o, Recompute { .. })));
    }

    #[test]
    fn streams_are_deterministic() {
        let a = ops(
            BasePattern::Interleave { warmup: 4 },
            0,
            WspParams::new(4, 1),
            200,
        );
        let b = ops(
            BasePattern::Interleave { warmup: 4 },
            0,
            WspParams::new(4, 1),
            200,
        );
        assert_eq!(a, b);
    }
}
