//! Deterministic, infinite per-stage and per-GPU op streams.
//!
//! A [`ScheduleStream`] is the schedule *as data*: the exact sequence
//! of [`ScheduleOp`]s one pipeline stage executes, decorated (on
//! stage 0) with the WSP wave bookkeeping — a [`ScheduleOp::Push`]
//! after the last backward of every wave and a
//! [`ScheduleOp::PullGate`] before the first forward that requires a
//! global wave. Streams are infinite iterators; executors pull ops on
//! demand and tests `take(n)` a prefix.
//!
//! A [`GpuStream`] is the *composite per-GPU* form of the same idea:
//! one ordered timeline per physical GPU, merging the ops of every
//! virtual-stage chunk the schedule co-locates there (each op tagged
//! with its stage as a [`GpuOp`]). This is how Megatron-LM's
//! interleaved schedule is actually specified — the GPU cycles
//! through its chunks in groups rather than letting arrival order
//! decide the merge — and it is the stream contract the executor's
//! `GpuStreamOrder` dispatch path consumes.
//!
//! # Splicing reshaped pipelines at drained wave boundaries
//!
//! [`ScheduleStream::resume_from`] / [`GpuStream::resume_from`]
//! fast-forward a fresh stream of the *same* shape past a boundary.
//! But an elastic splice usually *reshapes* the pipeline — a GPU was
//! lost, preempted, or re-admitted, or `Nm` changed — and then there
//! is no same-shape stream to resume: the correct continuation is a
//! **fresh stream of the new shape**, minibatches renumbered from 1,
//! with the splice's global wave/minibatch offsets applied outside the
//! stream (the runtime controller owns that bookkeeping). This is
//! sound because a wave boundary is a full drain point: every
//! minibatch of the boundary wave has completed its backward and
//! nothing beyond it has been dispatched, so the WSP state the new
//! stream assumes (clean slate, wave 0 local) is exactly the state the
//! drained pipeline is in — the boundary wave's push/pull bookkeeping
//! is settled by the splice itself.
//!
//! `fresh_epoch_stream_is_the_spliced_continuation` pins the
//! unchanged-shape specialization of that claim: for the drained base
//! patterns ([`BasePattern::FillDrain`], [`BasePattern::Fused`]) a
//! renumbered fresh stream emits op-for-op the `resume_from` tail,
//! modulo the boundary wave's own gate (already satisfied by the
//! splice). For [`BasePattern::Interleave`] (1F1B overlap across the
//! boundary) the fresh stream re-warms instead of inheriting the
//! resumed stream's in-flight window — still a correct continuation
//! (minibatches ≤ boundary complete, > boundary untouched), just not
//! op-identical; the re-warmup is the throughput cost of a splice, not
//! a correctness gap.

use crate::ops::{GpuOp, ScheduleOp};
use crate::recompute::RecomputePolicy;
use crate::wsp::WspParams;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The base compute pattern of a stream, before wave decoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BasePattern {
    /// `warmup` forwards, then strict backward/forward alternation
    /// (PipeDream 1F1B; also the steady-state shape of the HetPipe
    /// wave schedule at non-last stages).
    Interleave {
        /// Forwards executed before the first backward.
        warmup: u64,
    },
    /// All `Nm` forwards of a wave, then all `Nm` backwards (GPipe).
    FillDrain,
    /// Forward and backward of each minibatch fused as one task (the
    /// wave schedule's last stage).
    Fused,
}

/// An infinite, deterministic op stream for one pipeline stage.
#[derive(Debug, Clone)]
pub struct ScheduleStream {
    pattern: BasePattern,
    /// Wave bookkeeping (`Push` / `PullGate`) is emitted on stage 0
    /// only — pushes and pulls are per-virtual-worker, not per-stage.
    decorate: bool,
    /// When [`RecomputePolicy::BoundaryOnly`], every standalone
    /// backward is preceded by a [`ScheduleOp::Recompute`] of the same
    /// minibatch (fused tasks never need one).
    recompute: RecomputePolicy,
    wsp: WspParams,
    /// Forwards emitted so far (the next forward is `fwd_emitted + 1`).
    fwd_emitted: u64,
    /// Backwards emitted so far.
    bwd_emitted: u64,
    /// Newest wave already gated on (−1 = none), to emit each gate once.
    gated: i64,
    pending: VecDeque<ScheduleOp>,
}

impl ScheduleStream {
    pub(crate) fn new(pattern: BasePattern, stage: usize, wsp: WspParams) -> Self {
        ScheduleStream {
            pattern,
            decorate: stage == 0,
            recompute: RecomputePolicy::None,
            wsp,
            fwd_emitted: 0,
            bwd_emitted: 0,
            gated: -1,
            pending: VecDeque::new(),
        }
    }

    /// Returns this stream with the given recomputation policy: under
    /// [`RecomputePolicy::BoundaryOnly`] a [`ScheduleOp::Recompute`] is
    /// emitted immediately before every standalone backward. Must be
    /// applied before the first op is pulled.
    pub fn with_recompute(mut self, policy: RecomputePolicy) -> Self {
        debug_assert!(
            self.fwd_emitted == 0 && self.bwd_emitted == 0,
            "recompute policy must be set before the stream starts"
        );
        self.recompute = policy;
        self
    }

    /// Fast-forwards this (fresh) stream to the state immediately
    /// after the wave-boundary backward: ops are generated and
    /// discarded until the backward (or fused task) of `mb` — the last
    /// minibatch of `wave` — and the [`ScheduleOp::Push`] of `wave`
    /// that follows it on decorated stages have been emitted. The next
    /// op pulled from the resumed stream is therefore exactly the op a
    /// fresh stream would emit after that point: the resumed sequence
    /// *is* the tail of a fresh stream, which is what lets a re-planned
    /// executor splice a continuation at a wave boundary without
    /// re-deriving mid-stream state (`tests/runtime_faults.rs` /
    /// the stream tests pin the tail equality).
    ///
    /// `mb = 0` (before wave 0) returns the stream unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is not the last minibatch of `wave`, or if the
    /// stream has already emitted ops.
    pub fn resume_from(mut self, wave: u64, mb: u64) -> Self {
        assert!(
            self.fwd_emitted == 0 && self.bwd_emitted == 0 && self.pending.is_empty(),
            "resume_from requires a fresh stream"
        );
        if mb == 0 {
            return self;
        }
        assert_eq!(
            mb,
            self.wsp.last_of_wave(wave),
            "splices happen at wave boundaries"
        );
        // Discard popped ops (not generated state: `refill` batches a
        // whole emission group into `pending`, so `bwd_emitted` runs
        // ahead of what has actually been pulled).
        loop {
            match self.next() {
                Some(ScheduleOp::Backward { mb: m }) | Some(ScheduleOp::FusedFwdBwd { mb: m })
                    if m == mb =>
                {
                    break
                }
                Some(_) => {}
                None => unreachable!("schedule streams are infinite"),
            }
        }
        // Drain the rest of the boundary minibatch's emission group:
        // the wave push (decorated stages) sits in `pending` right
        // behind the backward that closed it.
        while matches!(self.pending.front(), Some(ScheduleOp::Push { wave: w }) if *w <= wave) {
            self.pending.pop_front();
        }
        self
    }

    /// Emits the gate for `p`'s required wave (once per wave) ahead of
    /// the forward of `p`.
    fn gate_before_forward(&mut self, p: u64) {
        if !self.decorate {
            return;
        }
        if let Some(w) = self.wsp.required_wave(p) {
            if w as i64 > self.gated {
                self.gated = w as i64;
                self.pending.push_back(ScheduleOp::PullGate { wave: w });
            }
        }
    }

    /// Emits the push after `p`'s backward when `p` closes a wave.
    fn push_after_backward(&mut self, p: u64) {
        if !self.decorate {
            return;
        }
        if p.is_multiple_of(self.wsp.nm as u64) {
            self.pending.push_back(ScheduleOp::Push {
                wave: p / self.wsp.nm as u64 - 1,
            });
        }
    }

    /// Emits the backward of `p` (with its recompute prefix when the
    /// policy calls for one) and the wave push that may follow it.
    fn emit_backward(&mut self, p: u64) {
        if self.recompute.is_on() {
            self.pending.push_back(ScheduleOp::Recompute { mb: p });
        }
        self.pending.push_back(ScheduleOp::Backward { mb: p });
        self.bwd_emitted = p;
        self.push_after_backward(p);
    }

    /// Generates the next base op (plus decorations) into `pending`.
    fn refill(&mut self) {
        let nm = self.wsp.nm as u64;
        match self.pattern {
            BasePattern::Fused => {
                let p = self.fwd_emitted + 1;
                self.gate_before_forward(p);
                self.pending.push_back(ScheduleOp::FusedFwdBwd { mb: p });
                self.fwd_emitted = p;
                self.bwd_emitted = p;
                self.push_after_backward(p);
            }
            BasePattern::Interleave { warmup } => {
                let outstanding = self.fwd_emitted - self.bwd_emitted;
                // A forward while the pipeline window has room (which
                // covers the initial warmup run of forwards), a
                // backward once it is full.
                if outstanding < warmup {
                    let p = self.fwd_emitted + 1;
                    self.gate_before_forward(p);
                    self.pending.push_back(ScheduleOp::Forward { mb: p });
                    self.fwd_emitted = p;
                } else {
                    self.emit_backward(self.bwd_emitted + 1);
                }
            }
            BasePattern::FillDrain => {
                let outstanding = self.fwd_emitted - self.bwd_emitted;
                // Fill while a wave is incomplete, drain it entirely
                // before touching the next wave.
                if outstanding < nm && self.bwd_emitted.is_multiple_of(nm) {
                    let p = self.fwd_emitted + 1;
                    self.gate_before_forward(p);
                    self.pending.push_back(ScheduleOp::Forward { mb: p });
                    self.fwd_emitted = p;
                } else {
                    self.emit_backward(self.bwd_emitted + 1);
                }
            }
        }
    }
}

impl Iterator for ScheduleStream {
    type Item = ScheduleOp;

    /// Always `Some`: schedules are infinite.
    fn next(&mut self) -> Option<ScheduleOp> {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop_front()
    }
}

/// The joint idealized unit-slot timetable of one whole virtual
/// pipeline, together with the per-GPU op queues it fans into.
///
/// One instance is **shared** (behind an `Arc`) by all of a virtual
/// worker's [`GpuStream`] handles: advancing a slot emits the newly
/// started ops of *every tracked GPU* into that GPU's queue, so the
/// slot simulation runs once per virtual worker instead of once per
/// GPU (the G× replay the per-instance form paid). Consumption order
/// across handles cannot perturb the timetable — queues only buffer —
/// so each GPU's emitted op sequence is identical to an independent
/// replay.
#[derive(Debug, Clone)]
struct Timetable {
    /// Physical GPUs in the pipeline (`p`).
    gpus: usize,
    /// Co-located chunks (`v`); virtual stages are `chunks × gpus`.
    chunks: usize,
    wsp: WspParams,
    /// Per virtual stage: the schedule's declared outstanding cap
    /// ([`crate::PipelineSchedule::max_in_flight`], injected at
    /// construction).
    caps: Vec<u64>,
    /// Per virtual stage: emit a [`ScheduleOp::Recompute`] before
    /// each backward (the schedule's
    /// [`crate::PipelineSchedule::recomputes_at`] decisions).
    remat: Vec<bool>,
    /// Simulated forward / backward completions per virtual stage.
    f: Vec<u64>,
    b: Vec<u64>,
    /// Per GPU: the timetable op in progress and its remaining slots
    /// (ops are duration-weighted: a backward costs about twice a
    /// forward, a recomputed backward three forwards).
    running: Vec<Option<(SlotOp, u32)>>,
    /// Newest wave already gated on (−1 = none).
    gated: i64,
    /// Which GPUs' ops are queued. A standalone [`GpuStream::new`]
    /// handle tracks only its own GPU (foreign queues would otherwise
    /// grow without a consumer); [`GpuStream::shared_set`] tracks all.
    track: Vec<bool>,
    /// Per-GPU queues of emitted-but-unconsumed ops.
    queues: Vec<VecDeque<GpuOp>>,
    /// Whether any slot has been simulated (guards `remat` changes).
    started: bool,
}

/// One op of the idealized timetable (internal to [`Timetable`]).
#[derive(Debug, Clone, Copy)]
enum SlotOp {
    Fwd { stage: usize, mb: u64 },
    Bwd { stage: usize, mb: u64 },
}

impl Timetable {
    fn new(gpus: usize, chunks: usize, wsp: WspParams, caps: Vec<u64>, track: Vec<bool>) -> Self {
        assert!(chunks >= 1, "at least one chunk per GPU");
        let k = chunks * gpus;
        assert_eq!(caps.len(), k, "one window cap per virtual stage");
        assert!(caps.iter().all(|&c| c >= 1), "windows hold at least one");
        Timetable {
            gpus,
            chunks,
            wsp,
            caps,
            remat: vec![false; k],
            f: vec![0; k],
            b: vec![0; k],
            running: vec![None; gpus],
            gated: -1,
            track,
            queues: (0..gpus).map(|_| VecDeque::new()).collect(),
            started: false,
        }
    }

    /// The op GPU `g` serves in the current slot of the idealized
    /// timetable, by drain-first / oldest-minibatch / deepest-stage
    /// priority, or `None` when `g` idles this slot.
    fn pick(&self, g: usize) -> Option<SlotOp> {
        let k = self.chunks * self.gpus;
        // Ready backward with the smallest minibatch, deepest stage on
        // ties (the most recently enabled link of the drain wave).
        let mut best: Option<(u64, usize)> = None;
        for c in 0..self.chunks {
            let s = c * self.gpus + g;
            let mb = self.b[s] + 1;
            let grad_ready = s + 1 == k || self.b[s + 1] >= mb;
            if mb <= self.f[s] && grad_ready && best.is_none_or(|(m, _)| mb < m) {
                best = Some((mb, s));
            }
        }
        if let Some((mb, stage)) = best {
            return Some(SlotOp::Bwd { stage, mb });
        }
        // Ready forward with the smallest minibatch (the deepest chunk
        // holding it wins ties automatically: a minibatch is ready at
        // exactly one stage), gated on the stage's 1F1B window.
        let mut best: Option<(u64, usize)> = None;
        for c in 0..self.chunks {
            let s = c * self.gpus + g;
            let mb = self.f[s] + 1;
            let input_ready = s == 0 || self.f[s - 1] >= mb;
            let window_open = self.f[s] - self.b[s] < self.caps[s];
            if input_ready && window_open && best.is_none_or(|(m, _)| mb < m) {
                best = Some((mb, s));
            }
        }
        best.map(|(mb, stage)| SlotOp::Fwd { stage, mb })
    }

    /// Duration of a timetable op in slots, with a forward as the
    /// unit: backwards stream twice the data and launch roughly twice
    /// the kernels (see `hetpipe-model`'s profile), and a recomputed
    /// backward additionally replays the stage forward. Matching the
    /// relative weights keeps the emitted *order* close to what the
    /// real durations produce, which is all the stream encodes.
    fn duration(&self, op: SlotOp) -> u32 {
        match op {
            SlotOp::Fwd { .. } => 1,
            SlotOp::Bwd { stage, .. } => {
                if self.remat[stage] {
                    3
                } else {
                    2
                }
            }
        }
    }

    /// Advances the idealized timetable one slot, emitting every
    /// tracked GPU's newly started op (if any) with its decorations
    /// into that GPU's queue.
    fn step_slot(&mut self) {
        self.started = true;
        // Idle GPUs pick against the slot-start state; completions
        // apply at the end of an op's last slot, so dependencies
        // always cross slot boundaries strictly forward (what makes
        // strict stream-order execution of the emitted prefixes
        // acyclic).
        let starts: Vec<Option<SlotOp>> = (0..self.gpus)
            .map(|g| {
                if self.running[g].is_none() {
                    self.pick(g)
                } else {
                    None
                }
            })
            .collect();
        for (g, op) in starts.into_iter().enumerate() {
            if let Some(op) = op {
                self.running[g] = Some((op, self.duration(op)));
                if self.track[g] {
                    self.emit(g, op);
                }
            }
        }
        for g in 0..self.gpus {
            if let Some((op, remaining)) = self.running[g] {
                if remaining == 1 {
                    match op {
                        SlotOp::Fwd { stage, .. } => self.f[stage] += 1,
                        SlotOp::Bwd { stage, .. } => self.b[stage] += 1,
                    }
                    self.running[g] = None;
                } else {
                    self.running[g] = Some((op, remaining - 1));
                }
            }
        }
    }

    /// Emits `op` (with its WSP decorations and recompute prefix) into
    /// GPU `g`'s queue.
    fn emit(&mut self, g: usize, op: SlotOp) {
        let queue = &mut self.queues[g];
        match op {
            SlotOp::Fwd { stage, mb } => {
                if stage == 0 {
                    if let Some(w) = self.wsp.required_wave(mb) {
                        if w as i64 > self.gated {
                            self.gated = w as i64;
                            queue.push_back(GpuOp {
                                stage,
                                op: ScheduleOp::PullGate { wave: w },
                            });
                        }
                    }
                }
                queue.push_back(GpuOp {
                    stage,
                    op: ScheduleOp::Forward { mb },
                });
            }
            SlotOp::Bwd { stage, mb } => {
                if self.remat[stage] {
                    queue.push_back(GpuOp {
                        stage,
                        op: ScheduleOp::Recompute { mb },
                    });
                }
                queue.push_back(GpuOp {
                    stage,
                    op: ScheduleOp::Backward { mb },
                });
                if stage == 0 && mb.is_multiple_of(self.wsp.nm as u64) {
                    queue.push_back(GpuOp {
                        stage,
                        op: ScheduleOp::Push {
                            wave: mb / self.wsp.nm as u64 - 1,
                        },
                    });
                }
            }
        }
    }
}

/// An infinite, deterministic *composite* op stream for one physical
/// GPU hosting several co-located virtual-stage chunks.
///
/// The merge order is derived from an **idealized unit-slot
/// timetable** of the whole virtual pipeline, the continuous analogue
/// of how Megatron-LM lays out its interleaved chunk groups: every
/// stage op takes one uniform time slot, each GPU runs at most one op
/// per slot, and ops become ready when their pipeline dependency
/// completed in an earlier slot. Per slot each GPU serves, in
/// priority order, the ready *backward* with the oldest minibatch
/// (draining completes minibatches and frees windows — classic 1F1B
/// drain priority), else the ready *forward* with the oldest
/// minibatch (ties to the deepest chunk, whose output the backward
/// wave needs soonest). Forwards are gated on the per-stage 1F1B
/// window `min(Nm, K − stage)` — the same bound
/// [`crate::PipelineSchedule::max_in_flight`] declares and the memory
/// model charges — so the stream's structural occupancy never
/// exceeds its certification and the WSP injection cap stays intact.
///
/// A virtual worker's handles share **one** joint [`Timetable`]
/// behind an `Arc` ([`GpuStream::shared_set`]): each slot is
/// simulated once and its ops fan into per-GPU queues, instead of
/// every handle independently replaying the whole timetable (G× the
/// slot work — the inefficiency the ROADMAP flagged). A standalone
/// handle ([`GpuStream::new`]) owns a private timetable and behaves
/// exactly like one member of a set — queues only buffer, so the
/// per-GPU op sequence is independent of how the handles interleave
/// their pulls. Because every dependency edge crosses slot boundaries
/// strictly forward, the union of stream-order edges and data
/// dependencies is acyclic — executing the per-GPU streams in strict
/// order can never deadlock, for any chunk count, GPU count, or `Nm`.
/// (A naive per-GPU chunk-group cursor does not have this property:
/// with equal chunk windows it can order a deep chunk's forward ahead
/// of the shallow chunk op that transitively feeds it on another GPU,
/// closing a cross-GPU wait cycle.)
///
/// The chunk-group interleaving the composite stream exists for
/// emerges directly: chunk 1's first microbatch becomes ready after
/// `GPUs` slots and immediately outranks chunk 0's next warmup
/// forward, so warmup hands over after one group of `min(GPUs, Nm)`
/// forwards instead of serializing chunk 0's whole window.
///
/// Wave bookkeeping (`PullGate` / `Push`) decorates virtual stage 0 —
/// chunk 0 of GPU 0 — exactly as [`ScheduleStream`] decorates
/// stage 0.
#[derive(Debug)]
pub struct GpuStream {
    /// The joint timetable — private to this handle
    /// ([`GpuStream::new`]) or shared by a virtual worker's whole
    /// handle set ([`GpuStream::shared_set`]).
    shared: Arc<Mutex<Timetable>>,
    /// This stream's GPU (0-based).
    gpu: usize,
}

impl Clone for GpuStream {
    /// Deep-clones the timetable state: the clone replays on from the
    /// current state independently, sharing nothing with the original
    /// (or with any set the original belongs to). The clone is a
    /// *standalone* handle: it tracks (and buffers ops for) only its
    /// own GPU — foreign queues a shared-set member had accumulated
    /// are dropped, since the clone has no consumer for them and they
    /// would otherwise grow without bound.
    fn clone(&self) -> GpuStream {
        let mut snapshot = self.shared.lock().expect("timetable lock").clone();
        for g in 0..snapshot.track.len() {
            snapshot.track[g] = g == self.gpu;
            if g != self.gpu {
                snapshot.queues[g].clear();
            }
        }
        GpuStream {
            shared: Arc::new(Mutex::new(snapshot)),
            gpu: self.gpu,
        }
    }
}

impl GpuStream {
    /// Creates a *standalone* composite stream of `gpu` in a pipeline
    /// of `gpus` physical GPUs each hosting `chunks` virtual stages
    /// (stage `c × gpus + gpu` for chunk `c`), with a private
    /// timetable that queues only this GPU's ops. Executors serving a
    /// whole virtual worker should use [`GpuStream::shared_set`]
    /// instead, which simulates the joint timetable once for all G
    /// handles.
    ///
    /// `caps` is the per-virtual-stage outstanding window, one entry
    /// per stage — the *schedule's own*
    /// [`crate::PipelineSchedule::max_in_flight`] values, passed in
    /// rather than re-derived here so the stream's structural
    /// occupancy can never drift from the declared accounting the
    /// memory model certifies and the occupancy audit enforces.
    ///
    /// # Panics
    ///
    /// Panics if `gpu >= gpus`, `chunks == 0`, `caps` has the wrong
    /// length, or any cap is 0.
    pub fn new(gpu: usize, gpus: usize, chunks: usize, wsp: WspParams, caps: Vec<u64>) -> Self {
        assert!(gpu < gpus, "gpu index out of range");
        let mut track = vec![false; gpus];
        track[gpu] = true;
        GpuStream {
            shared: Arc::new(Mutex::new(Timetable::new(gpus, chunks, wsp, caps, track))),
            gpu,
        }
    }

    /// Creates the full per-GPU handle set of one virtual worker —
    /// one [`GpuStream`] per physical GPU, all fanned from a **single
    /// shared** joint timetable (`Arc`), so each unit slot is
    /// simulated once instead of once per GPU.
    ///
    /// `remat` holds the per-virtual-stage rematerialization flags
    /// (the schedule's [`crate::PipelineSchedule::recomputes_at`]
    /// decisions), applied at construction since a shared timetable
    /// must not change once any handle has pulled an op.
    ///
    /// # Panics
    ///
    /// Panics if `chunks == 0`, or `caps` / `remat` do not have one
    /// entry per virtual stage, or any cap is 0.
    pub fn shared_set(
        gpus: usize,
        chunks: usize,
        wsp: WspParams,
        caps: Vec<u64>,
        remat: Vec<bool>,
    ) -> Vec<GpuStream> {
        let mut timetable = Timetable::new(gpus, chunks, wsp, caps, vec![true; gpus]);
        assert_eq!(
            remat.len(),
            timetable.remat.len(),
            "one recompute flag per virtual stage"
        );
        timetable.remat = remat;
        let shared = Arc::new(Mutex::new(timetable));
        (0..gpus)
            .map(|gpu| GpuStream {
                shared: Arc::clone(&shared),
                gpu,
            })
            .collect()
    }

    /// Sets the per-stage rematerialization flags, one per virtual
    /// stage: before each backward of a flagged stage the stream
    /// emits a [`ScheduleOp::Recompute`]. The flags are the
    /// *schedule's own* per-stage checkpoint decisions
    /// ([`crate::PipelineSchedule::recomputes_at`], applied by
    /// [`crate::PipelineSchedule::gpu_stream_with`]) — passed in,
    /// like the window caps, so the stream's recompute placement can
    /// never drift from the memory/cost/executor accounting. Must be
    /// applied before the first op is pulled.
    ///
    /// # Panics
    ///
    /// Panics if `remat` does not have one entry per virtual stage,
    /// or if the stream has already started.
    pub fn with_remat(self, remat: Vec<bool>) -> Self {
        {
            let mut t = self.shared.lock().expect("timetable lock");
            assert!(
                !t.started,
                "recompute flags must be set before the stream starts"
            );
            assert_eq!(
                remat.len(),
                t.remat.len(),
                "one recompute flag per virtual stage"
            );
            t.remat = remat;
        }
        self
    }

    /// Fast-forwards this composite stream to the state immediately
    /// after the wave-boundary backward of `mb` (the last minibatch of
    /// `wave`): ops are pulled and discarded until *every* co-located
    /// chunk of this GPU has emitted its backward of `mb`, plus the
    /// [`ScheduleOp::Push`] of `wave` on GPU 0 (which hosts virtual
    /// stage 0). The next op pulled is exactly what a fresh stream
    /// would emit after that point — the per-GPU form of
    /// [`ScheduleStream::resume_from`], and the stream-level
    /// prerequisite for splicing a re-planned continuation at a wave
    /// boundary.
    ///
    /// Works on standalone handles and on [`GpuStream::shared_set`]
    /// members alike (resume every member of a shared set, in any
    /// order: each handle discards only its own queue, and the shared
    /// timetable advances once). `mb = 0` returns the stream
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is not the last minibatch of `wave`.
    pub fn resume_from(mut self, wave: u64, mb: u64) -> Self {
        if mb == 0 {
            return self;
        }
        let (gpus, chunks) = {
            let t = self.shared.lock().expect("timetable lock");
            assert_eq!(
                mb,
                t.wsp.last_of_wave(wave),
                "splices happen at wave boundaries"
            );
            (t.gpus, t.chunks)
        };
        let mut done = vec![0u64; chunks];
        while done.iter().any(|&m| m < mb) {
            let gop = self.next().expect("streams are infinite");
            if let ScheduleOp::Backward { mb: m } = gop.op {
                done[gop.stage / gpus] = m;
            }
        }
        // The boundary wave's push is queued directly behind stage 0's
        // backward; consume it so the resumed stream starts clean.
        let mut t = self.shared.lock().expect("timetable lock");
        while matches!(
            t.queues[self.gpu].front(),
            Some(GpuOp { op: ScheduleOp::Push { wave: w }, .. }) if *w <= wave
        ) {
            t.queues[self.gpu].pop_front();
        }
        drop(t);
        self
    }
}

impl Iterator for GpuStream {
    type Item = GpuOp;

    /// Always `Some`: schedules are infinite. Pops this GPU's queue,
    /// advancing the (possibly shared) joint timetable while the
    /// queue is empty — the timetable always progresses: the oldest
    /// incomplete minibatch's frontier op is ready by construction
    /// (its dependency completed and, being the oldest, no window can
    /// be full of younger work below it), so some GPU runs every slot
    /// and this GPU's chunks recur within a bounded number of slots.
    fn next(&mut self) -> Option<GpuOp> {
        let mut t = self.shared.lock().expect("timetable lock");
        loop {
            if let Some(op) = t.queues[self.gpu].pop_front() {
                return Some(op);
            }
            t.step_slot();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(pattern: BasePattern, stage: usize, wsp: WspParams, n: usize) -> Vec<ScheduleOp> {
        ScheduleStream::new(pattern, stage, wsp).take(n).collect()
    }

    #[test]
    fn fill_drain_alternates_whole_waves() {
        use ScheduleOp::*;
        let got = ops(BasePattern::FillDrain, 1, WspParams::new(3, 0), 9);
        assert_eq!(
            got,
            vec![
                Forward { mb: 1 },
                Forward { mb: 2 },
                Forward { mb: 3 },
                Backward { mb: 1 },
                Backward { mb: 2 },
                Backward { mb: 3 },
                Forward { mb: 4 },
                Forward { mb: 5 },
                Forward { mb: 6 },
            ]
        );
    }

    #[test]
    fn interleave_warmup_then_1f1b() {
        use ScheduleOp::*;
        let got = ops(
            BasePattern::Interleave { warmup: 2 },
            1,
            WspParams::new(4, 0),
            8,
        );
        assert_eq!(
            got,
            vec![
                Forward { mb: 1 },
                Forward { mb: 2 },
                Backward { mb: 1 },
                Forward { mb: 3 },
                Backward { mb: 2 },
                Forward { mb: 4 },
                Backward { mb: 3 },
                Forward { mb: 5 },
            ]
        );
    }

    #[test]
    fn stage0_gets_push_and_gate_decorations() {
        let wsp = WspParams::new(2, 0); // s_global = 2: mb 4 requires wave 0.
        let got = ops(BasePattern::FillDrain, 0, wsp, 12);
        let pushes: Vec<_> = got
            .iter()
            .filter(|o| matches!(o, ScheduleOp::Push { .. }))
            .collect();
        let gates: Vec<_> = got
            .iter()
            .filter(|o| matches!(o, ScheduleOp::PullGate { .. }))
            .collect();
        assert!(!pushes.is_empty(), "stage 0 pushes waves: {got:?}");
        assert!(!gates.is_empty(), "stage 0 gates on waves: {got:?}");
        // The push of wave 0 appears right after Backward{2}.
        let b2 = got
            .iter()
            .position(|o| *o == ScheduleOp::Backward { mb: 2 })
            .unwrap();
        assert_eq!(got[b2 + 1], ScheduleOp::Push { wave: 0 });
        // The gate for wave 0 precedes Forward{4} (required_wave(4) = 0).
        let g = got
            .iter()
            .position(|o| *o == ScheduleOp::PullGate { wave: 0 })
            .unwrap();
        let f4 = got
            .iter()
            .position(|o| *o == ScheduleOp::Forward { mb: 4 })
            .unwrap();
        assert!(g < f4, "gate must precede the gated forward: {got:?}");
    }

    #[test]
    fn non_zero_stages_have_no_decorations() {
        for pattern in [
            BasePattern::FillDrain,
            BasePattern::Interleave { warmup: 3 },
            BasePattern::Fused,
        ] {
            let got = ops(pattern, 2, WspParams::new(2, 0), 40);
            assert!(
                got.iter().all(ScheduleOp::is_compute),
                "{pattern:?} stage 2 must be pure compute"
            );
        }
    }

    #[test]
    fn fused_stream_is_one_task_per_minibatch() {
        let got = ops(BasePattern::Fused, 3, WspParams::new(4, 0), 5);
        for (i, op) in got.iter().enumerate() {
            assert_eq!(*op, ScheduleOp::FusedFwdBwd { mb: i as u64 + 1 });
        }
    }

    #[test]
    fn recompute_precedes_every_standalone_backward() {
        use ScheduleOp::*;
        for pattern in [
            BasePattern::FillDrain,
            BasePattern::Interleave { warmup: 2 },
        ] {
            let got: Vec<ScheduleOp> = ScheduleStream::new(pattern, 1, WspParams::new(3, 0))
                .with_recompute(RecomputePolicy::BoundaryOnly)
                .take(60)
                .collect();
            let mut backwards = 0;
            for (i, op) in got.iter().enumerate() {
                if let Backward { mb } = op {
                    backwards += 1;
                    assert_eq!(
                        got[i - 1],
                        Recompute { mb: *mb },
                        "{pattern:?}: backward {mb} missing its recompute"
                    );
                }
            }
            assert!(backwards > 5, "{pattern:?} ran backwards");
            // Exactly one recompute per backward, no strays.
            let recomputes = got.iter().filter(|o| matches!(o, Recompute { .. })).count();
            // The tail may end on a Recompute whose Backward is cut off.
            assert!(recomputes == backwards || recomputes == backwards + 1);
        }
        // Fused tasks never recompute.
        let got: Vec<ScheduleOp> = ScheduleStream::new(BasePattern::Fused, 3, WspParams::new(3, 0))
            .with_recompute(RecomputePolicy::BoundaryOnly)
            .take(20)
            .collect();
        assert!(got.iter().all(|o| !matches!(o, Recompute { .. })));
    }

    #[test]
    fn resumed_stream_equals_tail_of_fresh() {
        // The splice prerequisite: resume_from(wave, mb) must continue
        // exactly where a fresh stream stands after emitting mb's
        // backward (and the wave push on decorated stages) — for every
        // base pattern, decorated and not.
        for pattern in [
            BasePattern::FillDrain,
            BasePattern::Interleave { warmup: 3 },
            BasePattern::Fused,
        ] {
            for stage in [0usize, 2] {
                for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                    let wsp = WspParams::new(3, 1);
                    let mk = || {
                        ScheduleStream::new(pattern, stage, wsp).with_recompute(
                            if pattern == BasePattern::Fused {
                                RecomputePolicy::None
                            } else {
                                recompute
                            },
                        )
                    };
                    let (wave, mb) = (1u64, wsp.last_of_wave(1));
                    let fresh: Vec<ScheduleOp> = mk().take(120).collect();
                    // The cut point: right after Backward/Fused{mb} and
                    // any immediately-following wave push.
                    let bwd_at = fresh
                        .iter()
                        .position(|o| {
                            matches!(o,
                                ScheduleOp::Backward { mb: m }
                                | ScheduleOp::FusedFwdBwd { mb: m } if *m == mb)
                        })
                        .expect("boundary backward in prefix");
                    let mut cut = bwd_at + 1;
                    while matches!(fresh.get(cut), Some(ScheduleOp::Push { .. })) {
                        cut += 1;
                    }
                    let tail: Vec<ScheduleOp> = fresh[cut..].to_vec();
                    let resumed: Vec<ScheduleOp> =
                        mk().resume_from(wave, mb).take(tail.len()).collect();
                    assert_eq!(
                        resumed, tail,
                        "{pattern:?} stage {stage} {recompute}: resumed != fresh tail"
                    );
                }
            }
        }
        // mb = 0 is the identity.
        let wsp = WspParams::new(4, 0);
        let a: Vec<ScheduleOp> = ScheduleStream::new(BasePattern::FillDrain, 0, wsp)
            .resume_from(0, 0)
            .take(20)
            .collect();
        let b: Vec<ScheduleOp> = ScheduleStream::new(BasePattern::FillDrain, 0, wsp)
            .take(20)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_epoch_stream_is_the_spliced_continuation() {
        // The reshaped-splice soundness claim, specialized to the
        // unchanged shape where it is checkable op-for-op: at a
        // drained wave boundary, a FRESH stream renumbered by the
        // boundary offsets (mb += boundary_mb, wave += boundary+1)
        // emits exactly the resume_from tail — except the boundary
        // wave's own PullGate, which the splice has already satisfied.
        // This is what licenses the controller to splice reshaped
        // pipelines (different device set or Nm) with fresh streams of
        // the new shape: a reshape has no old stream to resume.
        use ScheduleOp::*;
        let renumber = |op: &ScheduleOp, mb_off: u64, wave_off: u64| match *op {
            Forward { mb } => Forward { mb: mb + mb_off },
            Backward { mb } => Backward { mb: mb + mb_off },
            Recompute { mb } => Recompute { mb: mb + mb_off },
            FusedFwdBwd { mb } => FusedFwdBwd { mb: mb + mb_off },
            Push { wave } => Push {
                wave: wave + wave_off,
            },
            PullGate { wave } => PullGate {
                wave: wave + wave_off,
            },
        };
        // Drained patterns only: Interleave keeps 1F1B work in flight
        // across the boundary, so a fresh epoch re-warms (correct but
        // not op-identical — see the module docs).
        for pattern in [BasePattern::FillDrain, BasePattern::Fused] {
            for stage in [0usize, 2] {
                for s_global in [0usize, 1] {
                    let wsp = WspParams::new(3, s_global);
                    let boundary_wave = 1u64;
                    let boundary_mb = wsp.last_of_wave(boundary_wave);
                    let resumed: Vec<ScheduleOp> = ScheduleStream::new(pattern, stage, wsp)
                        .resume_from(boundary_wave, boundary_mb)
                        .take(60)
                        .collect();
                    // Drop the boundary wave's own bookkeeping: the
                    // splice settles waves <= boundary before the new
                    // epoch starts.
                    let resumed: Vec<ScheduleOp> = resumed
                        .into_iter()
                        .filter(|op| !matches!(op, PullGate { wave } if *wave <= boundary_wave))
                        .collect();
                    let fresh: Vec<ScheduleOp> = ScheduleStream::new(pattern, stage, wsp)
                        .map(|op| renumber(&op, boundary_mb, boundary_wave + 1))
                        .take(resumed.len())
                        .collect();
                    assert_eq!(
                        fresh, resumed,
                        "{pattern:?} stage {stage} s={s_global}: \
                         fresh epoch is not the spliced continuation"
                    );
                }
            }
        }
    }

    #[test]
    fn resumed_gpu_stream_equals_tail_of_fresh() {
        // Per-GPU form: after resume_from(wave, mb), each handle's op
        // sequence equals the fresh stream's tail past the point where
        // all of the GPU's chunks emitted Backward{mb} (plus the wave
        // push on GPU 0). Checked per GPU across chunk counts and
        // recompute, for standalone handles.
        for chunks in [1usize, 2, 3] {
            for gpus in [1usize, 2, 4] {
                let wsp = WspParams::new(3, 0);
                let k = chunks * gpus;
                let caps: Vec<u64> = (0..k).map(|s| (wsp.nm.min(k - s)) as u64).collect();
                let (wave, mb) = (1u64, wsp.last_of_wave(1));
                for gpu in 0..gpus {
                    let fresh: Vec<GpuOp> = GpuStream::new(gpu, gpus, chunks, wsp, caps.clone())
                        .take(400)
                        .collect();
                    let mut done = vec![0u64; chunks];
                    let mut cut = 0;
                    for (i, gop) in fresh.iter().enumerate() {
                        if let ScheduleOp::Backward { mb: m } = gop.op {
                            done[gop.stage / gpus] = m;
                        }
                        if done.iter().all(|&m| m >= mb) {
                            cut = i + 1;
                            break;
                        }
                    }
                    assert!(cut > 0, "prefix long enough to cross the boundary");
                    while matches!(
                        fresh.get(cut),
                        Some(GpuOp {
                            op: ScheduleOp::Push { .. },
                            ..
                        })
                    ) {
                        cut += 1;
                    }
                    let tail: Vec<GpuOp> = fresh[cut..cut + 100].to_vec();
                    let resumed: Vec<GpuOp> = GpuStream::new(gpu, gpus, chunks, wsp, caps.clone())
                        .resume_from(wave, mb)
                        .take(100)
                        .collect();
                    assert_eq!(
                        resumed, tail,
                        "chunks={chunks} gpus={gpus} gpu={gpu}: resumed != fresh tail"
                    );
                }
            }
        }
    }

    #[test]
    fn gpu_resume_from_zero_is_identity() {
        let wsp = WspParams::new(4, 0);
        let caps = vec![4, 3, 2, 1];
        let a: Vec<GpuOp> = GpuStream::new(1, 2, 2, wsp, caps.clone())
            .resume_from(0, 0)
            .take(40)
            .collect();
        let b: Vec<GpuOp> = GpuStream::new(1, 2, 2, wsp, caps).take(40).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn resumed_shared_set_matches_standalone_resume() {
        // Resuming every member of a shared set must leave each handle
        // emitting exactly what its standalone resumed counterpart
        // does — the shared timetable advances once, queues buffer.
        let (gpus, chunks) = (4usize, 2usize);
        let wsp = WspParams::new(4, 0);
        let k = chunks * gpus;
        let caps: Vec<u64> = (0..k).map(|s| (wsp.nm.min(k - s)) as u64).collect();
        let (wave, mb) = (0u64, wsp.last_of_wave(0));
        let shared: Vec<GpuStream> =
            GpuStream::shared_set(gpus, chunks, wsp, caps.clone(), vec![false; k])
                .into_iter()
                .map(|s| s.resume_from(wave, mb))
                .collect();
        for (g, mut stream) in shared.into_iter().enumerate() {
            let want: Vec<GpuOp> = GpuStream::new(g, gpus, chunks, wsp, caps.clone())
                .resume_from(wave, mb)
                .take(80)
                .collect();
            let got: Vec<GpuOp> = (0..80).map(|_| stream.next().unwrap()).collect();
            assert_eq!(got, want, "gpu {g}");
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let a = ops(
            BasePattern::Interleave { warmup: 4 },
            0,
            WspParams::new(4, 1),
            200,
        );
        let b = ops(
            BasePattern::Interleave { warmup: 4 },
            0,
            WspParams::new(4, 1),
            200,
        );
        assert_eq!(a, b);
    }
}
