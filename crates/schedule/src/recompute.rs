//! Activation recomputation policy.
//!
//! GPipe's headline memory saving (Huang et al., 2019; also central to
//! PipeDream-2BW's memory-efficient schedules) is *activation
//! recomputation*: a stage stashes only the boundary input of each
//! in-flight minibatch and re-runs its forward pass right before the
//! backward to rematerialize the intermediate activations. This trades
//! one extra forward of compute per backward for dropping the
//! per-minibatch stored-activation footprint to the boundary tensor —
//! the knob that turns "activation occupancy × stored bytes" from the
//! dominant memory term into a small one.
//!
//! The policy is threaded end-to-end:
//!
//! - [`crate::ScheduleStream::with_recompute`] inserts a
//!   [`crate::ScheduleOp::Recompute`] immediately before every
//!   standalone backward (fused forward+backward tasks never need one —
//!   their activations are still live).
//! - `hetpipe-model`'s memory accounting charges `in_flight ×
//!   boundary_input + 1 × stored` instead of `in_flight × (stored +
//!   boundary_input)` (one stored set is live while a backward's
//!   recomputed forward is in scope).
//! - `hetpipe-partition`'s cost model adds one forward-pass time (plus
//!   task dispatch overhead) per minibatch to every non-fused stage.
//! - The executor reserves the recompute task on the stage GPU directly
//!   ahead of its backward.

use std::fmt;

/// Whether pipeline stages stash full activations or recompute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecomputePolicy {
    /// Stash every intermediate activation from forward until backward
    /// (the paper's implicit baseline). No extra compute.
    #[default]
    None,
    /// Stash only each in-flight minibatch's boundary input; re-run the
    /// stage forward immediately before its backward to rematerialize
    /// the intermediates (GPipe-style checkpointing).
    BoundaryOnly,
}

impl RecomputePolicy {
    /// Both policies, for sweeps.
    pub const ALL: [RecomputePolicy; 2] = [RecomputePolicy::None, RecomputePolicy::BoundaryOnly];

    /// True when recomputation is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, RecomputePolicy::BoundaryOnly)
    }

    /// Parses a CLI name: `none` | `boundary` | `boundary-only`.
    pub fn parse(s: &str) -> Option<RecomputePolicy> {
        match s {
            "none" | "off" => Some(RecomputePolicy::None),
            "boundary" | "boundary-only" | "on" => Some(RecomputePolicy::BoundaryOnly),
            _ => None,
        }
    }
}

impl fmt::Display for RecomputePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecomputePolicy::None => "none",
            RecomputePolicy::BoundaryOnly => "boundary-only",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for p in RecomputePolicy::ALL {
            assert_eq!(RecomputePolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(RecomputePolicy::parse("off"), Some(RecomputePolicy::None));
        assert_eq!(
            RecomputePolicy::parse("boundary"),
            Some(RecomputePolicy::BoundaryOnly)
        );
        assert_eq!(RecomputePolicy::parse("sometimes"), None);
        assert_eq!(RecomputePolicy::default(), RecomputePolicy::None);
        assert!(!RecomputePolicy::None.is_on());
        assert!(RecomputePolicy::BoundaryOnly.is_on());
    }
}
