//! Pluggable pipeline schedules.
//!
//! HetPipe (Park et al., USENIX ATC 2020) fixes one pipeline schedule —
//! the Figure-1 wave schedule with `Nm` minibatches in flight — but the
//! design space it competes in is defined by *schedules*: GPipe's
//! fill-drain, PipeDream's one-forward-one-backward (1F1B), and
//! interleaved virtual-stage variants. This crate reifies a static
//! pipeline schedule as data so the executor, the memory model, and the
//! partitioner can all be generic over it:
//!
//! - [`ScheduleOp`] — the alphabet: forward / backward / fused tasks
//!   plus the WSP wave bookkeeping ops (`Push`, `PullGate`).
//! - [`ScheduleStream`] — a deterministic, infinite, per-stage op
//!   stream (the schedule *as data*).
//! - [`PipelineSchedule`] — the trait: op streams, the dispatch
//!   discipline, and per-stage peak-memory accounting (in-flight
//!   activations and pinned weight versions).
//! - [`HetPipeWave`], [`FillDrain`], [`OneFOneB`],
//!   [`Interleaved1F1B`] — the four concrete schedules.
//! - [`Schedule`] — the config-level knob (a `Copy` enum) that
//!   dispatches to the concrete implementations.
//! - [`WspParams`] — the Wave Synchronous Parallel clock / staleness
//!   algebra (Sections 4–5 of the paper), which every schedule's wave
//!   bookkeeping is expressed in.
//!
//! # Example
//!
//! ```
//! use hetpipe_schedule::{PipelineSchedule, Schedule, ScheduleOp, WspParams};
//!
//! // Stage 0 of a 4-stage 1F1B pipeline with waves of 4: four warmup
//! // forwards, then strict one-forward-one-backward alternation.
//! let wsp = WspParams::new(4, 0);
//! let ops: Vec<ScheduleOp> = Schedule::OneFOneB.stream(0, 4, wsp).take(6).collect();
//! assert_eq!(ops[..4], [
//!     ScheduleOp::Forward { mb: 1 },
//!     ScheduleOp::Forward { mb: 2 },
//!     ScheduleOp::Forward { mb: 3 },
//!     ScheduleOp::Forward { mb: 4 },
//! ]);
//! assert_eq!(ops[4], ScheduleOp::Backward { mb: 1 });
//! assert_eq!(ops[5], ScheduleOp::Forward { mb: 5 });
//! ```

pub mod ops;
pub mod schedules;
pub mod stream;
pub mod wsp;

pub use ops::{Dispatch, ScheduleOp};
pub use schedules::{
    FillDrain, HetPipeWave, Interleaved1F1B, OneFOneB, PipelineSchedule, Schedule,
};
pub use stream::ScheduleStream;
pub use wsp::WspParams;
