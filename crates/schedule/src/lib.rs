//! Pluggable pipeline schedules.
//!
//! HetPipe (Park et al., USENIX ATC 2020) fixes one pipeline schedule —
//! the Figure-1 wave schedule with `Nm` minibatches in flight — but the
//! design space it competes in is defined by *schedules*: GPipe's
//! fill-drain, PipeDream's one-forward-one-backward (1F1B), and
//! interleaved virtual-stage variants. This crate reifies a static
//! pipeline schedule as data so the executor, the memory model, and the
//! partitioner can all be generic over it:
//!
//! - [`ScheduleOp`] — the alphabet: forward / backward / fused tasks
//!   plus the WSP wave bookkeeping ops (`Push`, `PullGate`).
//! - [`ScheduleStream`] — a deterministic, infinite, per-stage op
//!   stream (the schedule *as data*).
//! - [`GpuStream`] / [`GpuOp`] — the *composite per-GPU* stream form:
//!   one ordered timeline per physical GPU, merging the co-located
//!   virtual-stage chunks in Megatron-style chunk groups, each op
//!   tagged with its stage. Schedules whose
//!   [`PipelineSchedule::dispatch`] is `GpuStreamOrder` are executed
//!   from these streams; the per-stage streams remain as projections
//!   for stage-local analyses.
//! - [`PipelineSchedule`] — the trait: op streams (per stage and,
//!   for composite schedules, per GPU), the dispatch discipline, and
//!   per-stage peak-memory accounting (in-flight activations and
//!   pinned weight versions).
//! - [`HetPipeWave`], [`FillDrain`], [`OneFOneB`],
//!   [`Interleaved1F1B`] — the concrete schedules ([`Interleaved1F1B`]
//!   in both its composite per-GPU and depth-expanded forms).
//! - [`Schedule`] — the config-level knob (a `Copy` enum) that
//!   dispatches to the concrete implementations.
//! - [`WspParams`] — the Wave Synchronous Parallel clock / staleness
//!   algebra (Sections 4–5 of the paper), which every schedule's wave
//!   bookkeeping is expressed in.
//! - [`RecomputePolicy`] — activation recomputation
//!   (GPipe/PipeDream-2BW-style checkpointing): stash only boundary
//!   inputs and re-run each stage forward right before its backward,
//!   trading compute for memory.
//!
//! # The enforced memory model
//!
//! [`PipelineSchedule::max_in_flight`] is a **contract with the
//! runtime**, not documentation: it is the peak number of minibatches
//! that may simultaneously hold activations at a stage, and every
//! layer of the system treats it as such.
//!
//! - The **partitioner** charges `max_in_flight × per-minibatch
//!   activation bytes` (plus [`PipelineSchedule::extra_weight_versions`]
//!   stashed parameter copies) when certifying that a stage fits its
//!   GPU.
//! - The **executor** enforces the same window at dispatch time:
//!   stream-order schedules execute their declared op streams in
//!   order, and arrival-FIFO schedules gate forward dispatch at each
//!   stage on the declared window, so a stage can never accumulate
//!   more activation sets than were certified — even if a schedule's
//!   stream over-promises.
//! - The **trace audit** (`hetpipe-core`'s `OccupancyAudit`) measures
//!   per-stage and per-GPU peak occupancy from the simulated span
//!   trace and asserts measured ≤ declared as a first-class invariant
//!   (exercised by the tier-1 tests and the CI schedule sweep).
//!
//! Declared bounds must therefore be *sound* rather than idealized:
//! the wave schedule declares the arrival-FIFO-achievable `Nm` per
//! non-fused stage (see [`HetPipeWave`]'s `max_in_flight` docs for why
//! Figure 1's `min(Nm, 2(k−1−q)+1)` window is unsound under timing
//! skew). Where the honest charge makes a plan memory-infeasible,
//! [`RecomputePolicy::BoundaryOnly`] drops the per-minibatch stash to
//! the boundary input — [`ScheduleStream::with_recompute`] inserts a
//! [`ScheduleOp::Recompute`] before every standalone backward, and the
//! cost model pays one extra forward per minibatch for it.
//!
//! # Example
//!
//! ```
//! use hetpipe_schedule::{PipelineSchedule, Schedule, ScheduleOp, WspParams};
//!
//! // Stage 0 of a 4-stage 1F1B pipeline with waves of 4: four warmup
//! // forwards, then strict one-forward-one-backward alternation.
//! let wsp = WspParams::new(4, 0);
//! let ops: Vec<ScheduleOp> = Schedule::OneFOneB.stream(0, 4, wsp).take(6).collect();
//! assert_eq!(ops[..4], [
//!     ScheduleOp::Forward { mb: 1 },
//!     ScheduleOp::Forward { mb: 2 },
//!     ScheduleOp::Forward { mb: 3 },
//!     ScheduleOp::Forward { mb: 4 },
//! ]);
//! assert_eq!(ops[4], ScheduleOp::Backward { mb: 1 });
//! assert_eq!(ops[5], ScheduleOp::Forward { mb: 5 });
//! ```

pub mod extract;
pub mod ops;
pub mod recompute;
pub mod schedules;
pub mod stream;
pub mod wsp;

pub use extract::{
    committed_queues, ps_interaction_points, CommittedQueue, GatePoint, PsInteractions, PushPoint,
    QueueKind,
};
pub use ops::{Dispatch, GpuOp, ScheduleOp};
pub use recompute::RecomputePolicy;
pub use schedules::{
    validate_gpu_stream, validate_stream, validate_stream_with, FillDrain, HetPipeWave,
    Interleaved1F1B, OneFOneB, PipelineSchedule, Schedule,
};
pub use stream::{GpuStream, ScheduleStream};
pub use wsp::WspParams;
