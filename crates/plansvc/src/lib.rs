//! Planner-as-a-service: a concurrent, typed request/reply plan server
//! over a sharded, sequence-versioned plan cache.
//!
//! PRs 4–5 made a single HetPipe partition solve cheap (tens of
//! microseconds) and replans warm-startable, but every caller still
//! linked the planner in-process and re-solved from scratch per run.
//! This crate productizes the planning pipeline behind one concurrent
//! API, the deployment shape PipeDream's offline profiler+optimizer
//! takes toward production: a long-running [`PlanService`] answers
//! "partition this model onto these (possibly derated) devices" for
//! many clients at once, and fault-driven replans arrive as
//! cache-invalidating *writes* rather than fresh cold solves.
//!
//! # Request/reply protocol
//!
//! A [`PlanRequest`] names the planning instance by value, not by
//! reference: `model_fp` / `cluster_fp` are the process-stable
//! FNV-1a fingerprints of [`hetpipe_core::plankey`] (registered up
//! front in a [`Catalog`]), plus the expanded stage-device list, `Nm`,
//! schedule, recompute policy, and the observed per-stage derate
//! vector. The [`PlanReply`] carries the partition plan, its cost
//! (bottleneck seconds), a per-key sequence number, and an honest
//! [`Provenance`]:
//!
//! - [`Provenance::CacheHit`] — served verbatim from the cache;
//!   bit-identical to the cold solve that populated it.
//! - [`Provenance::WarmMiss`] — solved, but warm-started from a cached
//!   neighbor via [`hetpipe_partition::PartitionSolver::solve_warm`];
//!   claimed only when [`PartitionSolver::incumbent_bound_secs`]
//!   confirms the incumbent actually yields a finite pruning bound
//!   (answer-preserving, so the reply is still bit-identical to cold).
//! - [`Provenance::Cold`] — solved from scratch.
//!
//! # Sequence numbers and invalidation (`MatchSeq`-style)
//!
//! Every cache entry carries a monotonic `seq`, starting at 1 and
//! incremented by each [`PlanClient::replan`] publish. All reads and
//! publishes of one key serialize on its cache shard's lock, which
//! yields the coherence guarantee the runtime needs: **once a replan
//! for a key has published `seq = n`, no reader of that key can ever
//! be served a plan with `seq < n`** — a fault-era plan cannot
//! resurface after recovery has replanned past it. Readers that cache
//! replies locally compare `seq` to detect staleness. A racing
//! query-miss that solved concurrently with a publish never clobbers
//! the newer entry: its insert is an atomic insert-if-absent that
//! yields to (and serves) whatever a concurrent publisher installed.
//!
//! # Warm-start neighbor policy
//!
//! A cache miss consults a neighbor index keyed by the request's
//! *family* — same model and cluster fingerprints, same device list,
//! schedule, and recompute policy, but any `Nm` or derate vector.
//! The most recently cached family member whose plan admits a sound
//! incumbent bound on the new instance seeds `solve_warm`, turning
//! most misses into warm misses: a straggler replan warm-starts from
//! the nominal plan, an `Nm` backoff warm-starts from the higher-`Nm`
//! plan (memory is monotone in `Nm`, so the higher-`Nm` incumbent
//! stays feasible). Family neighbors share the device list, hence the
//! stage count, so the incumbent is always shape-compatible.
//!
//! # Execution model
//!
//! [`PlanService::start`] spawns a worker pool over an mpsc request
//! queue; each [`PlanClient`] is a cheap clonable handle that resolves
//! cache hits directly against the shared cache (no queue round-trip)
//! and enqueues misses/replans as blocking request/reply jobs.
//!
//! # Degraded mode: deadlines, bounded retry, certified fallback
//!
//! A service that is *slow* (congested pool, long solve ahead of you in
//! the queue) is worse than one that is dead: a dead queue fails fast,
//! a slow one can stall a latency-critical caller indefinitely. Clients
//! built with [`PlanClient::with_deadline`] / [`PlanClient::with_retry`]
//! bound each attempt with a reply deadline, retry with exponential
//! backoff, and surface [`PlanError::DeadlineExceeded`] once the budget
//! is spent. The runtime controller treats that exactly like any other
//! service error: it falls back to the in-process solver, whose replans
//! are bit-identical to the service path (pinned by test), so degraded
//! mode loses latency headroom but never plan fidelity. A late reply
//! from an abandoned attempt is dropped by the worker — it can never be
//! mistaken for the answer to a newer request.
//!
//! # Verification
//!
//! The sequence protocol above is not just tested by racing threads:
//! [`shadow`] reifies its atomic steps as a pure state machine, and
//! `hetpipe-verify`'s in-tree model checker drives that shadow through
//! *every* interleaving of 2–3 virtual threads of publish / read /
//! insert-if-absent steps, proving the MatchSeq invariant exhaustively
//! (and demonstrably catching a deliberately broken blind-insert
//! variant). The underlying cache also evicts in true LRU order —
//! pinned by unit tests here and in `hetpipe-core` — rather than the
//! whole-shard dump of early versions.
//!
//! [`PartitionSolver::incumbent_bound_secs`]: hetpipe_partition::PartitionSolver::incumbent_bound_secs

pub mod cache;
pub mod service;
pub mod shadow;

pub use cache::{CachedPlan, PlanCache, PlanKey};
pub use service::{
    Catalog, PlanClient, PlanError, PlanReply, PlanRequest, PlanService, Provenance,
};
pub use shadow::{CacheOp, ShadowPlanCache, SHADOW_KEYS};
