//! The plan server: catalog, typed request/reply API, worker pool.

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_core::plankey::{cluster_fingerprint, graph_fingerprint};
use hetpipe_core::VirtualWorker;
use hetpipe_model::ModelGraph;
use hetpipe_partition::{PartitionError, PartitionPlan, PartitionProblem, PartitionSolver};
use hetpipe_schedule::{RecomputePolicy, Schedule};
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};

/// Default plan-cache capacity (plans, across shards).
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// The models and clusters a service instance can plan for, registered
/// up front and addressed by their stable fingerprints. Immutable once
/// the service starts (requests carry fingerprints, not graphs, so the
/// wire type stays small and the identity stays process-independent).
#[derive(Debug, Default)]
pub struct Catalog {
    models: HashMap<u64, Arc<ModelGraph>>,
    clusters: HashMap<u64, Arc<Cluster>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a model; returns its [`graph_fingerprint`] — the
    /// `model_fp` requests must carry.
    pub fn register_model(&mut self, graph: ModelGraph) -> u64 {
        let fp = graph_fingerprint(&graph);
        self.models.insert(fp, Arc::new(graph));
        fp
    }

    /// Registers a cluster; returns its [`cluster_fingerprint`] — the
    /// `cluster_fp` requests must carry.
    pub fn register_cluster(&mut self, cluster: Cluster) -> u64 {
        let fp = cluster_fingerprint(&cluster);
        self.clusters.insert(fp, Arc::new(cluster));
        fp
    }
}

/// How a [`PlanReply`] was produced (see the crate docs for the exact
/// honesty contract — `WarmMiss` is claimed only when the incumbent
/// bound genuinely applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Solved from scratch.
    Cold,
    /// Served from the cache (bit-identical to the solve that
    /// populated it).
    CacheHit,
    /// Solved warm-started from a cached neighbor's plan
    /// (answer-preserving: still bit-identical to a cold solve).
    WarmMiss,
}

/// One planning request, identifying the instance entirely by value.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// [`graph_fingerprint`] of a catalog-registered model.
    pub model_fp: u64,
    /// [`cluster_fingerprint`] of a catalog-registered cluster.
    pub cluster_fp: u64,
    /// Expanded virtual-stage device list in pipeline order (for
    /// interleaved schedules this already repeats physical GPUs).
    pub devices: Vec<DeviceId>,
    /// Concurrent minibatches (`Nm ≥ 1`).
    pub nm: usize,
    /// Pipeline schedule.
    pub schedule: Schedule,
    /// Recomputation policy.
    pub recompute: RecomputePolicy,
    /// Observed per-stage derate factors (observed/planned duration
    /// ratios, clamped to ≥ 1). Empty means nominal (all 1.0);
    /// otherwise must match `devices` in length.
    pub observed_derates: Vec<f64>,
}

impl PlanRequest {
    /// A nominal (underated) request.
    pub fn nominal(
        model_fp: u64,
        cluster_fp: u64,
        devices: Vec<DeviceId>,
        nm: usize,
        schedule: Schedule,
        recompute: RecomputePolicy,
    ) -> PlanRequest {
        PlanRequest {
            model_fp,
            cluster_fp,
            devices,
            nm,
            schedule,
            recompute,
            observed_derates: Vec::new(),
        }
    }

    /// Normalized per-stage derates: empty → all 1.0, and every factor
    /// clamped to ≥ 1 (the solver derates specs by `r.max(1.0)`, so
    /// keys normalize the same way — `0.9` and `1.0` are the same
    /// instance).
    fn normalized_derates(&self) -> Result<Vec<f64>, PlanError> {
        if self.observed_derates.is_empty() {
            return Ok(vec![1.0; self.devices.len()]);
        }
        if self.observed_derates.len() != self.devices.len() {
            return Err(PlanError::BadRequest(format!(
                "{} derates for {} stage devices",
                self.observed_derates.len(),
                self.devices.len()
            )));
        }
        if self.observed_derates.iter().any(|r| !r.is_finite()) {
            return Err(PlanError::BadRequest("non-finite derate".into()));
        }
        Ok(self.observed_derates.iter().map(|r| r.max(1.0)).collect())
    }

    /// The cache key this request resolves to.
    pub fn key(&self) -> Result<PlanKey, PlanError> {
        if self.devices.is_empty() {
            return Err(PlanError::BadRequest("empty device list".into()));
        }
        if self.nm == 0 {
            return Err(PlanError::BadRequest("nm must be >= 1".into()));
        }
        let derates = self.normalized_derates()?;
        Ok(PlanKey {
            model_fp: self.model_fp,
            cluster_fp: self.cluster_fp,
            devices: self.devices.clone(),
            nm: self.nm,
            schedule: self.schedule,
            recompute: self.recompute,
            derate_bits: derates.iter().map(|r| r.to_bits()).collect(),
        })
    }
}

/// A served plan.
#[derive(Debug, Clone)]
pub struct PlanReply {
    /// The partition plan (always bit-identical to what a cold
    /// [`PartitionSolver::solve`] of the same instance returns).
    pub plan: PartitionPlan,
    /// The key's `MatchSeq`-style version at serve time.
    pub seq: u64,
    /// Plan cost: bottleneck seconds.
    pub cost: f64,
    /// How the reply was produced.
    pub provenance: Provenance,
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// `model_fp` is not in the catalog.
    UnknownModel(u64),
    /// `cluster_fp` is not in the catalog.
    UnknownCluster(u64),
    /// Malformed request (empty devices, bad derate vector, device out
    /// of range, `nm = 0`).
    BadRequest(String),
    /// The instance has no feasible partition (callers typically lower
    /// `Nm` and retry — the controller owns that loop).
    Partition(PartitionError),
    /// The service shut down while the request was in flight.
    ServiceStopped,
    /// The service did not answer within the client's deadline across
    /// every retry — it is slow, not provably dead. Callers with a
    /// local solver (the runtime controller) fall back in-process so
    /// a congested service cannot stall a wave-boundary splice.
    DeadlineExceeded,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownModel(fp) => write!(f, "unknown model fingerprint {fp:#x}"),
            PlanError::UnknownCluster(fp) => write!(f, "unknown cluster fingerprint {fp:#x}"),
            PlanError::BadRequest(why) => write!(f, "bad request: {why}"),
            PlanError::Partition(e) => write!(f, "partition failed: {e}"),
            PlanError::ServiceStopped => write!(f, "plan service stopped"),
            PlanError::DeadlineExceeded => write!(f, "plan service deadline exceeded"),
        }
    }
}

impl std::error::Error for PlanError {}

/// What a queued job asks of a worker.
#[derive(Debug)]
enum JobKind {
    /// Solve a request (`publish` distinguishes replan writes from
    /// query reads).
    Solve { req: PlanRequest, publish: bool },
    /// Occupy the worker for the duration without answering — the
    /// test hook behind [`PlanService::stall_workers`], simulating a
    /// service that is slow (congested, GC-paused) rather than dead.
    Stall(std::time::Duration),
}

/// One queued request.
#[derive(Debug)]
struct Job {
    kind: JobKind,
    reply: mpsc::Sender<Result<PlanReply, PlanError>>,
}

/// State shared by the service, its workers, and every client.
#[derive(Debug)]
struct Shared {
    catalog: Catalog,
    cache: PlanCache,
}

/// The plan server: owns the worker pool and the shared cache.
/// Create with [`PlanService::start`], hand out [`PlanClient`]s via
/// [`PlanService::client`].
#[derive(Debug)]
pub struct PlanService {
    shared: Arc<Shared>,
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PlanService {
    /// Starts the service with `workers` solver threads (at least one)
    /// pulling from a shared mpsc request queue.
    pub fn start(catalog: Catalog, workers: usize) -> PlanService {
        let shared = Arc::new(Shared {
            catalog,
            cache: PlanCache::new(DEFAULT_CACHE_CAPACITY),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("plansvc-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing,
                        // never while solving.
                        let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                        match job {
                            Ok(job) => match job.kind {
                                JobKind::Solve { req, publish } => {
                                    let result = serve(&shared, &req, publish);
                                    // A client that gave up waiting is fine.
                                    let _ = job.reply.send(result);
                                }
                                JobKind::Stall(d) => {
                                    std::thread::sleep(d);
                                    let _ = job.reply.send(Err(PlanError::DeadlineExceeded));
                                }
                            },
                            // Queue closed: service shut down.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn plansvc worker")
            })
            .collect();
        PlanService {
            shared,
            tx: Some(tx),
            workers,
        }
    }

    /// A new client handle (cheap; clients are also `Clone`). The
    /// default client blocks indefinitely — bound it with
    /// [`PlanClient::with_deadline`] / [`PlanClient::with_retry`].
    pub fn client(&self) -> PlanClient {
        PlanClient {
            shared: Arc::clone(&self.shared),
            tx: self.tx.as_ref().expect("service running").clone(),
            deadline: None,
            retries: 0,
            backoff: std::time::Duration::from_millis(10),
        }
    }

    /// Test hook: enqueue one [`JobKind::Stall`] per worker so the
    /// whole pool is busy (slow, not dead) for `d`. Queued solve jobs
    /// behind the stalls still complete once the stalls drain.
    pub fn stall_workers(&self, d: std::time::Duration) {
        let tx = self.tx.as_ref().expect("service running");
        for _ in 0..self.workers.len() {
            let (reply, _rx) = mpsc::channel();
            let _ = tx.send(Job {
                kind: JobKind::Stall(d),
                reply,
            });
        }
    }

    /// Number of cached plans.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Drops every cached plan (bench harnesses use this to sample
    /// cold latencies on a long-running service).
    pub fn clear_cache(&self) {
        self.shared.cache.clear();
    }

    /// Lifetime cache counters: `(hits, misses, publishes)`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.cache.hits(),
            self.shared.cache.misses(),
            self.shared.cache.publishes(),
        )
    }

    /// Stops the workers and joins them. Every [`PlanClient`] must be
    /// dropped first — a live client keeps the queue open and this
    /// would block forever.
    pub fn shutdown(mut self) {
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        // Close the queue; workers drain and exit once the last client
        // hangs up. Not joined here — `shutdown` is the blocking path.
        self.tx = None;
    }
}

/// A clonable client handle: cache hits resolve directly against the
/// shared cache (no queue round-trip); misses and replans are blocking
/// request/reply jobs through the worker pool.
///
/// By default a client waits indefinitely for its reply. Latency-bound
/// callers (the runtime controller splicing at a wave boundary) set a
/// per-attempt deadline and a bounded retry budget with exponential
/// backoff; exhausting both yields [`PlanError::DeadlineExceeded`],
/// which such callers treat as "service slow — solve in-process". An
/// abandoned attempt's late reply is simply dropped by the worker.
#[derive(Debug, Clone)]
pub struct PlanClient {
    shared: Arc<Shared>,
    tx: mpsc::Sender<Job>,
    /// Per-attempt reply deadline (`None` = block forever).
    deadline: Option<std::time::Duration>,
    /// Extra attempts after the first deadline miss.
    retries: u32,
    /// Sleep before retry `n` is `backoff << n` (exponential).
    backoff: std::time::Duration,
}

impl PlanClient {
    /// Returns this client with a per-attempt reply deadline.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> PlanClient {
        self.deadline = Some(deadline);
        self
    }

    /// Returns this client with `retries` extra attempts after a
    /// deadline miss, sleeping `backoff`, `2·backoff`, `4·backoff`, …
    /// between attempts. Meaningless without a deadline.
    pub fn with_retry(mut self, retries: u32, backoff: std::time::Duration) -> PlanClient {
        self.retries = retries;
        self.backoff = backoff;
        self
    }
    /// Read path: serve `req` from the cache when present (a
    /// [`Provenance::CacheHit`], bit-identical to the solve that
    /// populated the entry), otherwise solve it on the worker pool —
    /// warm-started from a family neighbor when one applies — and
    /// cache the result at `seq = 1` (unless a racing publisher got
    /// there first, in which case its newer entry is served).
    pub fn plan(&self, req: &PlanRequest) -> Result<PlanReply, PlanError> {
        let key = req.key()?;
        if let Some(e) = self.shared.cache.get(&key) {
            return Ok(reply_from(e, Provenance::CacheHit));
        }
        self.call(req.clone(), false)
    }

    /// Write path (fault-driven replan): always re-solve — warm-started
    /// from this key's prior plan or a family neighbor — and publish at
    /// `seq + 1`, invalidating every stale reader of this key.
    pub fn replan(&self, req: &PlanRequest) -> Result<PlanReply, PlanError> {
        req.key()?;
        self.call(req.clone(), true)
    }

    fn call(&self, req: PlanRequest, publish: bool) -> Result<PlanReply, PlanError> {
        let attempts = 1 + self.retries;
        for attempt in 0..attempts {
            let (reply_tx, reply_rx) = mpsc::channel();
            self.tx
                .send(Job {
                    kind: JobKind::Solve {
                        req: req.clone(),
                        publish,
                    },
                    reply: reply_tx,
                })
                .map_err(|_| PlanError::ServiceStopped)?;
            match self.deadline {
                None => return reply_rx.recv().map_err(|_| PlanError::ServiceStopped)?,
                Some(d) => match reply_rx.recv_timeout(d) {
                    Ok(result) => return result,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(PlanError::ServiceStopped)
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if attempt + 1 < attempts {
                            // Exponential backoff between attempts; the
                            // abandoned attempt's reply channel is
                            // dropped, so its late answer is discarded.
                            std::thread::sleep(
                                self.backoff.saturating_mul(1u32 << attempt.min(20)),
                            );
                        }
                    }
                },
            }
        }
        Err(PlanError::DeadlineExceeded)
    }
}

fn reply_from(e: CachedPlan, provenance: Provenance) -> PlanReply {
    PlanReply {
        plan: e.plan,
        seq: e.seq,
        cost: e.cost,
        provenance,
    }
}

/// Worker-side request handling: validate, solve (warm when a sound
/// incumbent exists), publish or insert, reply.
fn serve(shared: &Shared, req: &PlanRequest, publish: bool) -> Result<PlanReply, PlanError> {
    let key = req.key()?;
    if !publish {
        // Double-check: another worker (or a publisher) may have
        // installed the entry since the client's fast-path miss.
        if let Some(e) = shared.cache.get(&key) {
            return Ok(reply_from(e, Provenance::CacheHit));
        }
    }
    let (plan, provenance) = solve(shared, req, &key)?;
    let cost = plan.bottleneck_secs;
    if publish {
        let entry = shared.cache.publish(&key, plan, cost);
        Ok(reply_from(entry, provenance))
    } else {
        let (entry, fresh) = shared.cache.insert_if_absent(&key, plan, cost);
        // A lost insert race serves the concurrently published (newer)
        // entry — a hit, as far as the caller can tell.
        let provenance = if fresh {
            provenance
        } else {
            Provenance::CacheHit
        };
        Ok(reply_from(entry, provenance))
    }
}

/// Cold-or-warm solve of `req`, mirroring
/// [`hetpipe_core::replan_vw_from_observed`] exactly (same derated
/// specs, same link derivation, same problem construction), so a
/// service-backed replan is bit-identical to the in-process path.
fn solve(
    shared: &Shared,
    req: &PlanRequest,
    key: &PlanKey,
) -> Result<(PartitionPlan, Provenance), PlanError> {
    let graph = shared
        .catalog
        .models
        .get(&req.model_fp)
        .ok_or(PlanError::UnknownModel(req.model_fp))?;
    let cluster = shared
        .catalog
        .clusters
        .get(&req.cluster_fp)
        .ok_or(PlanError::UnknownCluster(req.cluster_fp))?;
    if let Some(&bad) = req.devices.iter().find(|d| d.0 >= cluster.device_count()) {
        return Err(PlanError::BadRequest(format!(
            "device {} out of range for cluster with {} devices",
            bad.0,
            cluster.device_count()
        )));
    }
    let derates = req.normalized_derates()?;
    let gpus: Vec<_> = req
        .devices
        .iter()
        .zip(&derates)
        .map(|(&d, &r)| cluster.spec_of(d).derated(r))
        .collect();
    let links = VirtualWorker::links(cluster, &req.devices);
    let problem = PartitionProblem::with_schedule(graph, gpus, links, req.nm, req.schedule)
        .with_recompute(req.recompute);
    // Incumbent: this key's own prior plan (replans), else the most
    // recent family neighbor (different Nm / derates, same shape).
    let incumbent = shared.cache.get(key).or_else(|| shared.cache.neighbor(key));
    if let Some(inc) = incumbent {
        // Claim a warm start only when the incumbent yields a finite
        // pruning bound on *this* instance (valid cover, still
        // memory-feasible, non-colocated schedule).
        if PartitionSolver::incumbent_bound_secs(&problem, &inc.plan.ranges).is_some() {
            let plan = PartitionSolver::solve_warm(&problem, Some(&inc.plan.ranges))
                .map_err(PlanError::Partition)?;
            return Ok((plan, Provenance::WarmMiss));
        }
    }
    let plan = PartitionSolver::solve(&problem).map_err(PlanError::Partition)?;
    Ok((plan, Provenance::Cold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;

    fn service() -> (PlanService, u64, u64) {
        let mut catalog = Catalog::new();
        let model_fp = catalog.register_model(hetpipe_model::resnet152(32));
        let cluster_fp = catalog.register_cluster(Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]));
        (PlanService::start(catalog, 2), model_fp, cluster_fp)
    }

    fn devices() -> Vec<DeviceId> {
        (0..4).map(DeviceId).collect()
    }

    #[test]
    fn cold_then_hit_with_stable_seq() {
        let (svc, model_fp, cluster_fp) = service();
        let client = svc.client();
        let req = PlanRequest::nominal(
            model_fp,
            cluster_fp,
            devices(),
            2,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        let first = client.plan(&req).unwrap();
        assert_eq!(first.provenance, Provenance::Cold);
        assert_eq!(first.seq, 1);
        let second = client.plan(&req).unwrap();
        assert_eq!(second.provenance, Provenance::CacheHit);
        assert_eq!(second.seq, 1);
        assert_eq!(second.plan.ranges, first.plan.ranges);
        assert_eq!(second.plan.stage_secs, first.plan.stage_secs);
        drop(client);
        svc.shutdown();
    }

    #[test]
    fn replan_publishes_increasing_seq() {
        let (svc, model_fp, cluster_fp) = service();
        let client = svc.client();
        let req = PlanRequest::nominal(
            model_fp,
            cluster_fp,
            devices(),
            2,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        let a = client.replan(&req).unwrap();
        let b = client.replan(&req).unwrap();
        assert_eq!((a.seq, b.seq), (1, 2));
        // After a publish, reads serve the latest sequence.
        assert_eq!(client.plan(&req).unwrap().seq, 2);
        drop(client);
        svc.shutdown();
    }

    #[test]
    fn derated_miss_warm_starts_from_family_neighbor() {
        let (svc, model_fp, cluster_fp) = service();
        let client = svc.client();
        let nominal = PlanRequest::nominal(
            model_fp,
            cluster_fp,
            devices(),
            2,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        assert_eq!(client.plan(&nominal).unwrap().provenance, Provenance::Cold);
        let mut derated = nominal.clone();
        derated.observed_derates = vec![1.5, 1.0, 1.0, 1.0];
        let warm = client.plan(&derated).unwrap();
        assert_eq!(warm.provenance, Provenance::WarmMiss);
        // Parity: warm-start is answer-preserving.
        let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
        let graph = hetpipe_model::resnet152(32);
        let cold = hetpipe_core::replan_vw_from_observed(
            &cluster,
            &graph,
            &devices(),
            &[1.5, 1.0, 1.0, 1.0],
            2,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
            None,
        )
        .unwrap();
        assert_eq!(warm.plan.ranges, cold.ranges);
        assert_eq!(warm.plan.stage_secs, cold.stage_secs);
        drop(client);
        svc.shutdown();
    }

    #[test]
    fn unknown_fingerprints_and_bad_requests_error() {
        let (svc, model_fp, cluster_fp) = service();
        let client = svc.client();
        let good = PlanRequest::nominal(
            model_fp,
            cluster_fp,
            devices(),
            2,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        let mut bad = good.clone();
        bad.model_fp = 0xdead;
        assert_eq!(
            client.plan(&bad).unwrap_err(),
            PlanError::UnknownModel(0xdead)
        );
        let mut bad = good.clone();
        bad.cluster_fp = 0xbeef;
        assert_eq!(
            client.plan(&bad).unwrap_err(),
            PlanError::UnknownCluster(0xbeef)
        );
        let mut bad = good.clone();
        bad.devices = vec![DeviceId(99); 4];
        assert!(matches!(
            client.plan(&bad).unwrap_err(),
            PlanError::BadRequest(_)
        ));
        let mut bad = good.clone();
        bad.observed_derates = vec![1.0; 3];
        assert!(matches!(
            client.plan(&bad).unwrap_err(),
            PlanError::BadRequest(_)
        ));
        let mut bad = good.clone();
        bad.nm = 0;
        assert!(matches!(
            client.plan(&bad).unwrap_err(),
            PlanError::BadRequest(_)
        ));
        let mut bad = good;
        bad.devices.clear();
        assert!(matches!(
            client.plan(&bad).unwrap_err(),
            PlanError::BadRequest(_)
        ));
        drop(client);
        svc.shutdown();
    }

    #[test]
    fn stalled_pool_times_out_then_recovers() {
        use std::time::Duration;
        let (svc, model_fp, cluster_fp) = service();
        let client = svc
            .client()
            .with_deadline(Duration::from_millis(20))
            .with_retry(1, Duration::from_millis(5));
        let req = PlanRequest::nominal(
            model_fp,
            cluster_fp,
            devices(),
            2,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        // Both workers busy for longer than deadline x (1 + retries):
        // the bounded client gives up instead of stalling its caller.
        svc.stall_workers(Duration::from_millis(300));
        assert_eq!(
            client.replan(&req).unwrap_err(),
            PlanError::DeadlineExceeded
        );
        // Once the stall drains, the same client is served normally —
        // slow is a transient condition, not a poisoned handle.
        let patient = svc.client();
        let reply = patient.replan(&req).unwrap();
        assert!(reply.seq >= 1);
        assert!(reply.cost > 0.0);
        drop(client);
        drop(patient);
        svc.shutdown();
    }

    #[test]
    fn infeasible_nm_reports_partition_error() {
        let (svc, model_fp, cluster_fp) = service();
        let client = svc.client();
        let req = PlanRequest::nominal(
            model_fp,
            cluster_fp,
            devices(),
            // ResNet-152 on 4 whimpy RTX 2060s cannot hold hundreds of
            // concurrent minibatches.
            512,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        assert!(matches!(
            client.plan(&req).unwrap_err(),
            PlanError::Partition(PartitionError::OutOfMemory)
        ));
        drop(client);
        svc.shutdown();
    }
}
