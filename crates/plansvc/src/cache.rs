//! The sequence-versioned plan cache and its warm-start neighbor index.
//!
//! Built on [`hetpipe_core::plankey::ShardedCache`]: all reads and
//! writes of one [`PlanKey`] serialize on its shard lock, and the
//! publish/insert primitives below layer the `MatchSeq`-style
//! monotonic-sequence protocol on top of that atomicity (see the
//! crate-level docs for the protocol statement).

use hetpipe_cluster::DeviceId;
use hetpipe_core::plankey::ShardedCache;
use hetpipe_partition::PartitionPlan;
use hetpipe_schedule::{RecomputePolicy, Schedule};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of one planning instance, by value: stable fingerprints
/// for the model and cluster, the expanded stage-device list in
/// pipeline order, `Nm`, schedule, recompute policy, and the observed
/// per-stage derate vector (bit-exact, already normalized to ≥ 1.0).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`hetpipe_core::plankey::graph_fingerprint`] of the model.
    pub model_fp: u64,
    /// [`hetpipe_core::plankey::cluster_fingerprint`] of the cluster.
    pub cluster_fp: u64,
    /// Expanded virtual-stage device list in pipeline order.
    pub devices: Vec<DeviceId>,
    /// Concurrent minibatches.
    pub nm: usize,
    /// Pipeline schedule.
    pub schedule: Schedule,
    /// Recomputation policy.
    pub recompute: RecomputePolicy,
    /// `f64::to_bits` of each stage's normalized derate (length =
    /// `devices.len()`; all-nominal is a vector of `1.0f64.to_bits()`).
    pub derate_bits: Vec<u64>,
}

impl PlanKey {
    /// The key's warm-start family: every instance sharing model,
    /// cluster, devices, schedule, and recompute — any `Nm` or derate
    /// vector. Family members share the stage count, so any member's
    /// plan is a shape-compatible incumbent for any other.
    fn family(&self) -> FamilyKey {
        FamilyKey {
            model_fp: self.model_fp,
            cluster_fp: self.cluster_fp,
            devices: self.devices.clone(),
            schedule: self.schedule,
            recompute: self.recompute,
        }
    }
}

/// Neighbor-index key: [`PlanKey`] minus `nm` and `derate_bits`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FamilyKey {
    model_fp: u64,
    cluster_fp: u64,
    devices: Vec<DeviceId>,
    schedule: Schedule,
    recompute: RecomputePolicy,
}

/// One cached plan with its `MatchSeq`-style version.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Monotonic per-key sequence: 1 on first insert, +1 per publish.
    pub seq: u64,
    /// The solved partition (bit-identical to a cold solve).
    pub plan: PartitionPlan,
    /// Plan cost: bottleneck seconds.
    pub cost: f64,
}

/// Neighbors remembered per family, most recent first.
const FAMILY_NEIGHBOR_CAP: usize = 8;

/// The plan cache: a sharded `PlanKey → CachedPlan` map plus the
/// family neighbor index used to seed warm starts on misses.
#[derive(Debug)]
pub struct PlanCache {
    entries: ShardedCache<PlanKey, CachedPlan>,
    families: ShardedCache<FamilyKey, Vec<PlanKey>>,
    publishes: AtomicU64,
}

impl PlanCache {
    /// Creates a cache bounded at roughly `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: ShardedCache::new(capacity),
            families: ShardedCache::new(capacity),
            publishes: AtomicU64::new(0),
        }
    }

    /// Looks up the current entry for `key` (counts hit/miss).
    pub fn get(&self, key: &PlanKey) -> Option<CachedPlan> {
        self.entries.get(key)
    }

    /// Publishes a replanned `key` with `seq = prior + 1` (or 1 when
    /// the key was absent), atomically replacing any prior entry —
    /// after this returns, no reader of `key` can be served an older
    /// sequence.
    pub fn publish(&self, key: &PlanKey, plan: PartitionPlan, cost: f64) -> CachedPlan {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        let entry = self.entries.update(key.clone(), |slot| {
            let seq = slot.as_ref().map(|e| e.seq + 1).unwrap_or(1);
            let entry = CachedPlan { seq, plan, cost };
            *slot = Some(entry.clone());
            entry
        });
        self.remember_family(key);
        entry
    }

    /// Inserts a freshly solved query miss *unless* someone installed
    /// an entry in the meantime — a racing publisher's newer plan is
    /// never clobbered; the existing entry is returned instead.
    /// Returns `(entry, fresh)` with `fresh = false` when the race was
    /// lost (callers then serve the cached entry as a hit, keeping the
    /// sequence guarantee).
    pub fn insert_if_absent(
        &self,
        key: &PlanKey,
        plan: PartitionPlan,
        cost: f64,
    ) -> (CachedPlan, bool) {
        let (entry, fresh) = self.entries.update(key.clone(), |slot| match slot {
            Some(existing) => (existing.clone(), false),
            None => {
                let entry = CachedPlan { seq: 1, plan, cost };
                *slot = Some(entry.clone());
                (entry, true)
            }
        });
        if fresh {
            self.remember_family(key);
        }
        (entry, fresh)
    }

    /// The most recently cached family neighbor of `key` (same model,
    /// cluster, devices, schedule, recompute; different `Nm` or
    /// derates) that still has a live cache entry — the warm-start
    /// incumbent candidate for a miss on `key`.
    pub fn neighbor(&self, key: &PlanKey) -> Option<CachedPlan> {
        let siblings = self.families.get(&key.family())?;
        siblings
            .iter()
            .filter(|k| *k != key)
            .find_map(|k| self.entries.get(k))
    }

    fn remember_family(&self, key: &PlanKey) {
        self.families.update(key.family(), |slot| {
            let mut list = slot.take().unwrap_or_default();
            list.retain(|k| k != key);
            list.insert(0, key.clone());
            list.truncate(FAMILY_NEIGHBOR_CAP);
            *slot = Some(list);
        });
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan and neighbor link (counters persist).
    pub fn clear(&self) {
        self.entries.clear();
        self.families.clear();
    }

    /// Lifetime entry-lookup hits.
    pub fn hits(&self) -> u64 {
        self.entries.hits()
    }

    /// Lifetime entry-lookup misses.
    pub fn misses(&self) -> u64 {
        self.entries.misses()
    }

    /// Lifetime publishes ([`PlanCache::publish`] calls).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(nm: usize, derate: f64) -> PlanKey {
        PlanKey {
            model_fp: 0xabcd,
            cluster_fp: 0x1234,
            devices: vec![DeviceId(0), DeviceId(1)],
            nm,
            schedule: Schedule::HetPipeWave,
            recompute: RecomputePolicy::None,
            derate_bits: vec![derate.to_bits(); 2],
        }
    }

    fn plan(bottleneck: f64) -> PartitionPlan {
        PartitionPlan {
            ranges: vec![0..1, 1..2],
            stage_secs: vec![bottleneck, bottleneck / 2.0],
            bottleneck_secs: bottleneck,
        }
    }

    #[test]
    fn publish_bumps_sequence_monotonically() {
        let cache = PlanCache::new(1024);
        let k = key(4, 1.0);
        for expect in 1..=5u64 {
            let e = cache.publish(&k, plan(0.1), 0.1);
            assert_eq!(e.seq, expect);
        }
        assert_eq!(cache.get(&k).unwrap().seq, 5);
        assert_eq!(cache.publishes(), 5);
    }

    #[test]
    fn insert_if_absent_yields_to_published_entry() {
        let cache = PlanCache::new(1024);
        let k = key(4, 1.3);
        // A publisher got there first (e.g. a replan racing a query).
        cache.publish(&k, plan(0.2), 0.2);
        cache.publish(&k, plan(0.3), 0.3);
        let (entry, fresh) = cache.insert_if_absent(&k, plan(0.9), 0.9);
        assert!(!fresh, "a lost race must not clobber the newer entry");
        assert_eq!(entry.seq, 2);
        assert_eq!(entry.cost, 0.3);
        // Whereas a genuinely absent key inserts at seq 1.
        let k2 = key(3, 1.3);
        let (entry, fresh) = cache.insert_if_absent(&k2, plan(0.4), 0.4);
        assert!(fresh);
        assert_eq!(entry.seq, 1);
    }

    #[test]
    fn family_index_is_cap8_most_recent_first() {
        // Publish 10 family members (distinct Nm); the neighbor index
        // must hold exactly FAMILY_NEIGHBOR_CAP of them, newest first —
        // the two oldest fall off the end.
        let cache = PlanCache::new(1024);
        for nm in 1..=10usize {
            cache.publish(&key(nm, 1.0), plan(nm as f64), nm as f64);
        }
        let list = cache.families.get(&key(1, 1.0).family()).unwrap();
        assert_eq!(list.len(), FAMILY_NEIGHBOR_CAP);
        let order: Vec<usize> = list.iter().map(|k| k.nm).collect();
        assert_eq!(order, vec![10, 9, 8, 7, 6, 5, 4, 3], "most recent first");
        // Re-publishing an old member moves it to the front without
        // growing the list.
        cache.publish(&key(5, 1.0), plan(5.0), 5.0);
        let list = cache.families.get(&key(1, 1.0).family()).unwrap();
        let order: Vec<usize> = list.iter().map(|k| k.nm).collect();
        assert_eq!(order, vec![5, 10, 9, 8, 7, 6, 4, 3]);
        // And neighbor() serves the head of the list (skipping self).
        assert_eq!(cache.neighbor(&key(4, 1.0)).unwrap().cost, 5.0);
        assert_eq!(cache.neighbor(&key(5, 1.0)).unwrap().cost, 10.0);
    }

    #[test]
    fn plan_entries_evict_in_lru_order() {
        // cap 2 per shard: under insert pressure, a plan that is read
        // (touched) after every insert is always its shard's freshest
        // entry, so eviction — now true LRU, not a whole-shard dump —
        // must never pick it, while cold entries do get evicted.
        let cache = PlanCache::new(32);
        cache.publish(&key(1, 1.0), plan(1.0), 1.0);
        for nm in 2..=64usize {
            cache.publish(&key(nm, 1.0), plan(nm as f64), nm as f64);
            assert!(
                cache.get(&key(1, 1.0)).is_some(),
                "the hot entry must survive eviction (lost after nm={nm})"
            );
        }
        assert!(cache.len() <= 32, "capacity still bounds the cache");
        assert!(
            (2..=64).any(|nm| cache.entries.get(&key(nm, 1.0)).is_none()),
            "cold entries are the ones evicted"
        );
    }

    #[test]
    fn neighbor_finds_family_members_most_recent_first() {
        let cache = PlanCache::new(1024);
        assert!(cache.neighbor(&key(4, 1.5)).is_none());
        cache.publish(&key(4, 1.0), plan(0.1), 0.1);
        cache.publish(&key(3, 1.0), plan(0.2), 0.2);
        // Miss on a derated instance: the most recent family member
        // (nm=3) seeds the warm start.
        let n = cache.neighbor(&key(4, 1.5)).unwrap();
        assert_eq!(n.cost, 0.2);
        // A key is not its own neighbor.
        let n = cache.neighbor(&key(3, 1.0)).unwrap();
        assert_eq!(n.cost, 0.1);
        // Different devices = different family.
        let mut other = key(4, 1.0);
        other.devices = vec![DeviceId(2), DeviceId(3)];
        assert!(cache.neighbor(&other).is_none());
    }
}
