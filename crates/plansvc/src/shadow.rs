//! A pure, clonable shadow of the [`crate::PlanCache`] seq protocol,
//! for exhaustive model checking.
//!
//! The real cache's protocol steps — publish, read, insert-if-absent —
//! each run as one critical section under a shard lock (see
//! [`hetpipe_core::plankey`]'s module docs), so any concurrent history
//! is equivalent to a sequential interleaving of atomic steps. This
//! module reifies that step semantics over a small fixed key space as
//! a pure state machine: no locks, no heap beyond the state itself,
//! `Clone` everywhere — exactly what a deterministic-scheduler
//! explorer needs to fork the world at every branch point.
//! `hetpipe-verify`'s checker drives [`ShadowPlanCache`] through
//! **all** interleavings of 2–3 virtual threads of [`CacheOp`] steps
//! and checks [`ShadowPlanCache::check`] at every reachable state,
//! proving the MatchSeq invariant rather than sampling it.
//!
//! The shadow is faithful to [`crate::PlanCache::publish`] /
//! [`crate::PlanCache::insert_if_absent`] via
//! [`hetpipe_core::plankey::shadow::SeqCell`], whose steps are pinned
//! to the real `ShardedCache::update` semantics by a parity test in
//! `hetpipe-core`. One deliberate simplification: the shadow has no
//! eviction. LRU eviction resets an evicted key's sequence history, so
//! MatchSeq holds *per cache residency* — a key evicted and
//! re-inserted restarts at `seq = 1`, which callers already treat as a
//! fresh instance (the plan service sizes its cache so hot keys stay
//! resident).

use hetpipe_core::plankey::shadow::SeqCell;

/// Number of distinct keys the shadow models. Two suffices to exhibit
/// every cross-key phenomenon the protocol has (there are none — keys
/// are independent — which the checker confirms by proving the
/// invariant key-wise).
pub const SHADOW_KEYS: usize = 2;

/// One protocol step against one key of the shadow cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// A replan publishing `seq = prior + 1` for the key.
    Publish(usize),
    /// A reader observing the key's current entry (or its absence).
    Read(usize),
    /// A query miss installing `seq = 1` iff the key is absent,
    /// yielding to any racing publisher.
    InsertIfAbsent(usize),
    /// The **deliberately broken** step: a blind insert that installs
    /// `seq = 1` unconditionally, clobbering newer entries — the bug
    /// `insert_if_absent` exists to prevent. Interleavings containing
    /// it must be flagged by the checker.
    BlindInsert(usize),
}

/// The shadow cache: per-key protocol state plus the per-key
/// published-sequence watermark the MatchSeq invariant is judged
/// against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowPlanCache {
    cells: [SeqCell; SHADOW_KEYS],
    /// Highest sequence ever *published* per key — monotone by
    /// construction, updated only by [`CacheOp::Publish`].
    published: [u64; SHADOW_KEYS],
}

impl ShadowPlanCache {
    /// An empty cache.
    pub fn new() -> ShadowPlanCache {
        ShadowPlanCache::default()
    }

    /// Applies one atomic protocol step.
    pub fn apply(&mut self, op: CacheOp) {
        match op {
            CacheOp::Publish(k) => {
                let seq = self.cells[k].publish();
                self.published[k] = self.published[k].max(seq);
            }
            CacheOp::Read(k) => {
                // Reads mutate nothing; the invariant below judges
                // what any read at this state would observe.
                let _ = self.cells[k].read();
            }
            CacheOp::InsertIfAbsent(k) => {
                let _ = self.cells[k].insert_if_absent();
            }
            CacheOp::BlindInsert(k) => {
                let _ = self.cells[k].blind_insert();
            }
        }
    }

    /// The MatchSeq invariant, judged at the current state: for every
    /// key, a read right now observes a sequence at least as new as
    /// the latest published one. `Err` names the offending key.
    pub fn check(&self) -> Result<(), String> {
        for k in 0..SHADOW_KEYS {
            let observed = self.cells[k].read().unwrap_or(0);
            if observed < self.published[k] {
                return Err(format!(
                    "MatchSeq violated on key {k}: a reader observes seq {observed} \
                     but seq {} was published",
                    self.published[k]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_steps_preserve_matchseq_sequentially() {
        let mut c = ShadowPlanCache::new();
        for op in [
            CacheOp::InsertIfAbsent(0),
            CacheOp::Publish(0),
            CacheOp::Read(0),
            CacheOp::Publish(1),
            CacheOp::InsertIfAbsent(1),
            CacheOp::Publish(0),
            CacheOp::Read(1),
        ] {
            c.apply(op);
            c.check().unwrap();
        }
    }

    #[test]
    fn blind_insert_breaks_matchseq() {
        let mut c = ShadowPlanCache::new();
        c.apply(CacheOp::Publish(0));
        c.apply(CacheOp::Publish(0));
        c.check().unwrap();
        c.apply(CacheOp::BlindInsert(0));
        let err = c.check().unwrap_err();
        assert!(err.contains("MatchSeq violated"), "{err}");
        // The other key is unaffected.
        assert!(err.contains("key 0"), "{err}");
    }

    #[test]
    fn keys_are_independent() {
        let mut c = ShadowPlanCache::new();
        c.apply(CacheOp::Publish(0));
        c.apply(CacheOp::BlindInsert(1));
        // Key 1 never published, so a blind insert there is merely a
        // fresh entry — no violation.
        c.check().unwrap();
    }
}
