//! Training-memory model.
//!
//! Two questions from the paper are answered here:
//!
//! 1. *Does the whole model fit one GPU?* — gates the data-parallel
//!    baseline. Section 8.3: ResNet-152 at batch 32 "is too large to be
//!    loaded into a single GPU with G type [6 GB RTX 2060], and thus,
//!    Horovod uses only 12 GPUs", while VGG-19 fits all 16.
//! 2. *Does a pipeline stage fit its GPU for a given `Nm`?* — the memory
//!    constraint of the partitioning algorithm (Sections 4 and 7). The
//!    stage's position matters: earlier stages hold activations of more
//!    in-flight minibatches (the paper's GPU1-vs-GPU4 discussion around
//!    Figure 1).

use crate::graph::ModelGraph;
use hetpipe_cluster::gpu::GpuSpec;
use hetpipe_schedule::{HetPipeWave, PipelineSchedule, RecomputePolicy, Schedule};
use std::ops::Range;

/// cuDNN scratch workspace reserved per GPU, bytes.
pub const CUDNN_WORKSPACE_BYTES: u64 = 600 << 20;

/// Framework (TensorFlow 1.12 runtime, CUDA context) overhead, bytes.
pub const FRAMEWORK_OVERHEAD_BYTES: u64 = 500 << 20;

/// Resident copies of the parameter set: weights, gradients, and SGD
/// momentum.
pub const PARAM_STATE_COPIES: u64 = 3;

/// Number of minibatches simultaneously holding state at a stage of
/// the paper's wave schedule.
///
/// This is the *sound arrival-FIFO* bound the executor enforces: every
/// non-last stage may transiently hold the full injection window `Nm`
/// (under arrival-order dispatch with timing skew, forwards race ahead
/// of backwards), while the last stage holds exactly one (forward and
/// backward run fused). Figure 1's idealized window
/// `min(Nm, 2(k − 1 − q) + 1)` only holds for perfectly balanced
/// stages and is **not** what a certified plan can rely on at runtime.
///
/// # Examples
///
/// ```
/// use hetpipe_model::memory::in_flight_at_stage;
/// // k = 4, Nm = 4 — GPU1 holds up to 4, GPU4 (fused) holds 1.
/// assert_eq!(in_flight_at_stage(0, 4, 4), 4);
/// assert_eq!(in_flight_at_stage(2, 4, 4), 4);
/// assert_eq!(in_flight_at_stage(3, 4, 4), 1);
/// ```
pub fn in_flight_at_stage(stage: usize, k: usize, nm: usize) -> usize {
    HetPipeWave.max_in_flight(stage, k, nm)
}

/// The `Nm` beyond which a `k`-stage pipeline's *throughput* gains
/// nothing.
///
/// A minibatch's forward/backward round trip through the pipeline
/// spans `2k - 1` task slots, so more than `2k - 1` concurrent
/// minibatches cannot keep any additional stage busy — they only queue
/// (and, under the sound occupancy accounting, cost memory). The `Nm`
/// search is therefore capped here.
pub fn nm_saturation_limit(k: usize) -> usize {
    2 * k - 1
}

/// The per-stage constants of the stage-memory formula, hoisted out
/// of the byte computation: a stage's in-flight window, pinned weight
/// versions, and checkpoint decision depend only on
/// `(stage, k, nm, schedule, recompute)` — not on the layer range —
/// so callers probing many ranges per stage (the partition DP issues
/// O(L²) probes per stage per solve) construct the terms once and
/// evaluate each range as pure prefix-sum arithmetic, instead of
/// paying the schedule's dynamic dispatch per probe.
///
/// This is the *single source* of the stage-memory formula:
/// [`TrainingMemoryModel::stage_bytes_with`] delegates here, so the
/// hoisted and unhoisted paths cannot drift.
#[derive(Debug, Clone, Copy)]
pub struct StageMemoryTerms {
    /// Parameter-set copies held: the resident
    /// weights/gradients/momentum ([`PARAM_STATE_COPIES`]) plus the
    /// schedule's stashed versions.
    param_copies: u64,
    /// Peak minibatches simultaneously holding activations.
    in_flight: u64,
    /// Whether the stage checkpoints
    /// ([`PipelineSchedule::recomputes_at`]).
    recomputes: bool,
}

impl StageMemoryTerms {
    /// Resolves the schedule's per-stage terms once.
    pub fn new(
        stage: usize,
        k: usize,
        nm: usize,
        schedule: &dyn PipelineSchedule,
        recompute: RecomputePolicy,
    ) -> StageMemoryTerms {
        StageMemoryTerms {
            param_copies: PARAM_STATE_COPIES + schedule.extra_weight_versions(stage, k, nm),
            in_flight: schedule.max_in_flight(stage, k, nm) as u64,
            recomputes: schedule.recomputes_at(stage, k, nm, recompute),
        }
    }

    /// Whether the stage checkpoints under these terms (the resolved
    /// [`PipelineSchedule::recomputes_at`] decision) — exposed so
    /// callers that hoist the terms need not re-resolve the flag.
    #[inline]
    pub fn recomputes(&self) -> bool {
        self.recomputes
    }

    /// Bytes the stage needs to hold the contiguous layer `range` —
    /// O(1): two prefix-sum range queries and a few multiplies.
    #[inline]
    pub fn stage_bytes(&self, graph: &ModelGraph, range: Range<usize>) -> u64 {
        let params = graph.param_bytes_in(range.clone());
        let stored = graph.stored_bytes_in(range.clone());
        let input_buf = graph.input_bytes_of(range.start);
        let activations = if self.recomputes {
            // Stashed boundary inputs for every in-flight minibatch,
            // plus the one rematerialized set live during a backward.
            self.in_flight * input_buf + stored
        } else {
            self.in_flight * (stored + input_buf)
        };
        params * self.param_copies + activations + CUDNN_WORKSPACE_BYTES + FRAMEWORK_OVERHEAD_BYTES
    }
}

/// Analytic training-memory model for a [`ModelGraph`].
#[derive(Debug, Clone, Copy)]
pub struct TrainingMemoryModel;

impl TrainingMemoryModel {
    /// Bytes needed to train the whole model on one GPU (data-parallel
    /// worker): parameter states, all stored activations of one
    /// minibatch, workspace and framework overhead.
    pub fn full_model_bytes(graph: &ModelGraph) -> u64 {
        PARAM_STATE_COPIES * graph.total_param_bytes()
            + graph.total_stored_bytes()
            + CUDNN_WORKSPACE_BYTES
            + FRAMEWORK_OVERHEAD_BYTES
    }

    /// Whether a single `gpu` can train the whole model (the
    /// data-parallel feasibility gate).
    pub fn fits_full_model(graph: &ModelGraph, gpu: &GpuSpec) -> bool {
        Self::full_model_bytes(graph) <= gpu.memory_bytes
    }

    /// Bytes needed by pipeline stage `stage` (0-based of `k`) holding
    /// the contiguous layer range `range`, with `nm` minibatches in the
    /// pipeline, under the paper's wave schedule.
    ///
    /// Per Section 4, each in-flight minibatch additionally pins the
    /// weight version it started with (`w_p` is kept until minibatch
    /// `p`'s backward pass), so stages stash `in_flight - 1` extra
    /// parameter copies.
    pub fn stage_bytes(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
    ) -> u64 {
        Self::stage_bytes_for(graph, range, stage, k, nm, &HetPipeWave)
    }

    /// Bytes needed by pipeline stage `stage` under an arbitrary
    /// [`PipelineSchedule`]: the schedule determines both the peak
    /// number of in-flight activation sets
    /// ([`PipelineSchedule::max_in_flight`]) and the extra pinned
    /// weight versions
    /// ([`PipelineSchedule::extra_weight_versions`]) — e.g. GPipe
    /// fill-drain stores a whole wave of activations but a single
    /// weight version, while 1F1B bounds activations by pipeline depth
    /// but stashes one version per in-flight minibatch.
    pub fn stage_bytes_for(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        schedule: &dyn PipelineSchedule,
    ) -> u64 {
        Self::stage_bytes_with(graph, range, stage, k, nm, schedule, RecomputePolicy::None)
    }

    /// [`Self::stage_bytes_for`] under an activation-recomputation
    /// policy. At stages that checkpoint
    /// ([`PipelineSchedule::recomputes_at`]: the policy is on and the
    /// stage's window exceeds 1) each in-flight minibatch stashes only
    /// its boundary input; one full stored set is additionally charged
    /// because the backward currently running has its forward
    /// rematerialized in memory ([`Self::stage_rematerialized_bytes`]).
    /// Non-checkpointing stages (window 1, fused last stages) charge
    /// the plain full stash — for a window of 1 the two are equal, so
    /// skipping the recompute there costs no memory.
    pub fn stage_bytes_with(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        schedule: &dyn PipelineSchedule,
        recompute: RecomputePolicy,
    ) -> u64 {
        StageMemoryTerms::new(stage, k, nm, schedule, recompute).stage_bytes(graph, range)
    }

    /// The *rematerialized-set* component of
    /// [`Self::stage_bytes_with`]: the one full stored-activation set
    /// that is live while a checkpointing stage runs a backward (its
    /// forward was just re-run). Zero at stages that do not checkpoint.
    ///
    /// Split out because the charge is tied to a *running backward*,
    /// and co-located interleaved chunks share one serial GPU — at
    /// most one of a GPU's chunks can be executing a backward at any
    /// instant, so the per-GPU aggregation
    /// ([`Self::per_gpu_peak_bytes_with`]) charges the **max** across
    /// the GPU's chunks rather than the sum. Summing (the old
    /// behaviour) over-charged every multi-chunk GPU by
    /// `(chunks − 1) × stored` and rejected plans that fit.
    pub fn stage_rematerialized_bytes(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        schedule: &dyn PipelineSchedule,
        recompute: RecomputePolicy,
    ) -> u64 {
        if schedule.recomputes_at(stage, k, nm, recompute) {
            graph.stored_bytes_in(range)
        } else {
            0
        }
    }

    /// Reference implementation of [`Self::stage_bytes_with`] that
    /// re-sums the layer slice on every call (the pre-prefix-sum
    /// behaviour). Kept as the parity oracle for the planner's O(1)
    /// range queries and as the timing baseline `planner_bench`
    /// records — not for production use.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_bytes_with_naive(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        schedule: &dyn PipelineSchedule,
        recompute: RecomputePolicy,
    ) -> u64 {
        let layers = &graph.layers()[range.clone()];
        let params: u64 = layers.iter().map(|l| l.param_bytes).sum();
        let stored: u64 = layers.iter().map(|l| l.stored_bytes).sum();
        let in_flight = schedule.max_in_flight(stage, k, nm) as u64;
        let extra_versions = schedule.extra_weight_versions(stage, k, nm);
        let input_buf = graph.input_bytes_of(range.start);
        let activations = if schedule.recomputes_at(stage, k, nm, recompute) {
            in_flight * input_buf + stored
        } else {
            in_flight * (stored + input_buf)
        };
        params * (PARAM_STATE_COPIES + extra_versions)
            + activations
            + CUDNN_WORKSPACE_BYTES
            + FRAMEWORK_OVERHEAD_BYTES
    }

    /// Whether `gpu` can host the given stage under the wave schedule.
    pub fn stage_fits(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        gpu: &GpuSpec,
    ) -> bool {
        Self::stage_bytes(graph, range, stage, k, nm) <= gpu.memory_bytes
    }

    /// Whether `gpu` can host the given stage under `schedule`,
    /// splitting the budget of co-located interleaved chunks equally.
    ///
    /// Schedules that co-locate several virtual stages on one GPU
    /// (interleaved chunks) split the GPU's budget: each stage must
    /// fit an equal share of the memory left after the per-GPU fixed
    /// overheads (counted once). Equal split is conservative — the
    /// chunk sums it admits always fit — and keeps the constraint
    /// per-stage, which is what the interval DP can check; the solver
    /// uses it as the *fallback* certification after the exact joint
    /// per-GPU check ([`Self::plan_fits_per_gpu`]) over uneven chunk
    /// shares.
    pub fn stage_fits_for(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        gpu: &GpuSpec,
        schedule: &dyn PipelineSchedule,
    ) -> bool {
        Self::stage_fits_with(
            graph,
            range,
            stage,
            k,
            nm,
            gpu,
            schedule,
            RecomputePolicy::None,
        )
    }

    /// [`Self::stage_fits_for`] under a recomputation policy.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_fits_with(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        gpu: &GpuSpec,
        schedule: &dyn PipelineSchedule,
        recompute: RecomputePolicy,
    ) -> bool {
        let budget = Self::equal_split_budget(gpu, schedule);
        Self::stage_bytes_with(graph, range, stage, k, nm, schedule, recompute) <= budget
    }

    /// The per-stage byte budget of `gpu` under `schedule`: the whole
    /// capacity for flat schedules, or the conservative equal split
    /// (fixed overheads counted once) across co-located interleaved
    /// chunks.
    pub fn equal_split_budget(gpu: &GpuSpec, schedule: &dyn PipelineSchedule) -> u64 {
        let colocated = schedule.colocated_stages() as u64;
        if colocated > 1 {
            let fixed = CUDNN_WORKSPACE_BYTES + FRAMEWORK_OVERHEAD_BYTES;
            fixed + gpu.memory_bytes.saturating_sub(fixed) / colocated
        } else {
            gpu.memory_bytes
        }
    }

    /// Whether the stage fits `gpu` with the *whole* GPU budget to
    /// itself (no co-located-chunk split). A necessary condition for
    /// any placement; the solver's relaxed DP pass probes this and
    /// certifies the reconstructed plan with the exact joint check
    /// [`Self::plan_fits_per_gpu`], which admits uneven chunk shares
    /// (a big chunk paired with a small one) that the equal split
    /// rejects.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_fits_alone(
        graph: &ModelGraph,
        range: Range<usize>,
        stage: usize,
        k: usize,
        nm: usize,
        gpu: &GpuSpec,
        schedule: &dyn PipelineSchedule,
        recompute: RecomputePolicy,
    ) -> bool {
        Self::stage_bytes_with(graph, range, stage, k, nm, schedule, recompute) <= gpu.memory_bytes
    }

    /// Peak memory per *physical GPU* for a full partition plan under
    /// `schedule`: per-stage bytes, with interleaved virtual stages
    /// that share a GPU summed (minus the per-GPU fixed overheads
    /// counted once).
    ///
    /// `ranges` has one entry per executor stage
    /// (`schedule.virtual_stages(gpus)` of them); stage `s` runs on
    /// GPU `s % gpus`. Returns one peak-bytes figure per GPU.
    pub fn per_gpu_peak_bytes(
        graph: &ModelGraph,
        ranges: &[Range<usize>],
        gpus: usize,
        nm: usize,
        schedule: &Schedule,
    ) -> Vec<u64> {
        Self::per_gpu_peak_bytes_with(graph, ranges, gpus, nm, schedule, RecomputePolicy::None)
    }

    /// [`Self::per_gpu_peak_bytes`] under a recomputation policy.
    ///
    /// The rematerialized activation set of checkpointing stages is
    /// charged as the **max** across a GPU's co-located chunks, not
    /// the sum: the chunks share one serial GPU, so at most one
    /// backward (and hence one rematerialized forward) is live per
    /// GPU at any instant. Everything else a stage pins — stashed
    /// boundary inputs, weight versions — persists across the GPU's
    /// whole chunk set and is summed as before.
    pub fn per_gpu_peak_bytes_with(
        graph: &ModelGraph,
        ranges: &[Range<usize>],
        gpus: usize,
        nm: usize,
        schedule: &Schedule,
        recompute: RecomputePolicy,
    ) -> Vec<u64> {
        let k = ranges.len();
        let fixed = CUDNN_WORKSPACE_BYTES + FRAMEWORK_OVERHEAD_BYTES;
        let mut per_gpu = vec![fixed; gpus];
        let mut remat_max = vec![0u64; gpus];
        for (stage, range) in ranges.iter().enumerate() {
            let stage_total =
                Self::stage_bytes_with(graph, range.clone(), stage, k, nm, schedule, recompute);
            let remat = Self::stage_rematerialized_bytes(
                graph,
                range.clone(),
                stage,
                k,
                nm,
                schedule,
                recompute,
            );
            per_gpu[stage % gpus] += stage_total - fixed - remat;
            remat_max[stage % gpus] = remat_max[stage % gpus].max(remat);
        }
        for (peak, remat) in per_gpu.iter_mut().zip(remat_max) {
            *peak += remat;
        }
        per_gpu
    }

    /// The exact joint per-GPU memory check: every physical GPU's
    /// co-located chunk set — with whatever *uneven* shares the plan
    /// gives them — fits that GPU's capacity. `gpus` holds the
    /// physical GPU specs in stage order (stage `s` runs on GPU
    /// `s % gpus.len()`).
    pub fn plan_fits_per_gpu(
        graph: &ModelGraph,
        ranges: &[Range<usize>],
        gpus: &[GpuSpec],
        nm: usize,
        schedule: &Schedule,
        recompute: RecomputePolicy,
    ) -> bool {
        let peaks =
            Self::per_gpu_peak_bytes_with(graph, ranges, gpus.len(), nm, schedule, recompute);
        peaks
            .iter()
            .zip(gpus)
            .all(|(&peak, gpu)| peak <= gpu.memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{resnet152, vgg19};
    use hetpipe_cluster::GpuKind;

    #[test]
    fn paper_memory_gates() {
        // Section 8.3 / Table 4: ResNet-152 @32 does NOT fit the 6 GB
        // RTX 2060 (Horovod drops to 12 GPUs) but DOES fit the 8 GB
        // Quadro P4000 and everything above; VGG-19 fits all four kinds.
        let rn = resnet152(32);
        let vg = vgg19(32);
        assert!(!TrainingMemoryModel::fits_full_model(
            &rn,
            &GpuKind::Rtx2060.spec()
        ));
        assert!(TrainingMemoryModel::fits_full_model(
            &rn,
            &GpuKind::QuadroP4000.spec()
        ));
        assert!(TrainingMemoryModel::fits_full_model(
            &rn,
            &GpuKind::TitanV.spec()
        ));
        for kind in GpuKind::ALL {
            assert!(
                TrainingMemoryModel::fits_full_model(&vg, &kind.spec()),
                "VGG-19 must fit {kind}"
            );
        }
    }

    #[test]
    fn in_flight_is_the_sound_fifo_bound() {
        // k = 4, Nm = 4 (the paper's running example): the executor can
        // let any non-fused stage transiently hold the full injection
        // window, so the sound charge is Nm, not the idealized Figure-1
        // window.
        assert_eq!(in_flight_at_stage(0, 4, 4), 4);
        assert_eq!(in_flight_at_stage(1, 4, 4), 4);
        assert_eq!(in_flight_at_stage(2, 4, 4), 4);
        assert_eq!(in_flight_at_stage(3, 4, 4), 1);
        assert_eq!(in_flight_at_stage(0, 4, 100), 100);
        // Nm = 1 degrades to naive model parallelism everywhere.
        for q in 0..4 {
            assert_eq!(in_flight_at_stage(q, 4, 1), 1);
        }
    }

    #[test]
    fn earlier_stages_need_more_memory() {
        let g = vgg19(32);
        let k = 4;
        let quarter = g.len() / k;
        let r = 0..quarter;
        let early = TrainingMemoryModel::stage_bytes(&g, r.clone(), 0, k, 4);
        let late = TrainingMemoryModel::stage_bytes(&g, r, 3, k, 4);
        assert!(
            early > late,
            "same layers cost more memory at stage 0 than stage 3"
        );
    }

    #[test]
    fn more_concurrency_needs_more_memory() {
        let g = resnet152(32);
        let r = 0..10;
        let m1 = TrainingMemoryModel::stage_bytes(&g, r.clone(), 0, 4, 1);
        let m4 = TrainingMemoryModel::stage_bytes(&g, r.clone(), 0, 4, 4);
        let m7 = TrainingMemoryModel::stage_bytes(&g, r, 0, 4, 7);
        assert!(m1 < m4 && m4 < m7);
    }

    #[test]
    fn schedule_changes_stage_memory() {
        use hetpipe_schedule::Schedule;
        let g = vgg19(32);
        let r = 0..g.len() / 4;
        let (k, nm) = (4, 8);
        let wave =
            TrainingMemoryModel::stage_bytes_for(&g, r.clone(), 0, k, nm, &Schedule::HetPipeWave);
        let gpipe =
            TrainingMemoryModel::stage_bytes_for(&g, r.clone(), 0, k, nm, &Schedule::FillDrain);
        let ofob =
            TrainingMemoryModel::stage_bytes_for(&g, r.clone(), 0, k, nm, &Schedule::OneFOneB);
        // Stage 0, Nm = 8 > depth: fill-drain and the wave schedule
        // both store the whole wave's 8 activation sets, but the wave
        // schedule additionally stashes 7 weight versions (w_p), while
        // 1F1B bounds activations by depth (4) — so 1F1B is cheapest
        // and the wave schedule dearest.
        assert!(ofob < gpipe, "1F1B {ofob} vs fill-drain {gpipe}");
        assert!(gpipe < wave, "fill-drain {gpipe} vs wave {wave}");
        // The wave-schedule path and the legacy API agree exactly.
        assert_eq!(wave, TrainingMemoryModel::stage_bytes(&g, r, 0, k, nm));
    }

    #[test]
    fn recompute_cuts_activation_memory() {
        use hetpipe_schedule::Schedule;
        let g = vgg19(32);
        let r = 0..g.len() / 4;
        let (k, nm) = (4, 8);
        for schedule in Schedule::ALL {
            let full = TrainingMemoryModel::stage_bytes_with(
                &g,
                r.clone(),
                0,
                k,
                nm,
                &schedule,
                RecomputePolicy::None,
            );
            let ckpt = TrainingMemoryModel::stage_bytes_with(
                &g,
                r.clone(),
                0,
                k,
                nm,
                &schedule,
                RecomputePolicy::BoundaryOnly,
            );
            assert!(
                ckpt < full,
                "{schedule}: boundary-only {ckpt} must undercut full stash {full}"
            );
        }
        // The fused last stage holds one set either way: recompute
        // changes nothing there (its activations are still live).
        let fused_full = TrainingMemoryModel::stage_bytes_with(
            &g,
            r.clone(),
            k - 1,
            k,
            nm,
            &Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        let fused_ckpt = TrainingMemoryModel::stage_bytes_with(
            &g,
            r,
            k - 1,
            k,
            nm,
            &Schedule::HetPipeWave,
            RecomputePolicy::BoundaryOnly,
        );
        assert_eq!(fused_full, fused_ckpt);
    }

    #[test]
    fn joint_per_gpu_check_admits_uneven_chunk_shares() {
        use hetpipe_schedule::Schedule;
        let g = vgg19(32);
        let n = g.len();
        let (k, nm) = (4, 2);
        let sched = Schedule::Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        // A deliberately lopsided 2-GPU, 4-virtual-stage split: GPU 0
        // hosts a big chunk (stage 0, half the model) and a tiny one
        // (stage 2).
        let ranges = vec![
            0..n / 2,
            n / 2..n / 2 + 1,
            n / 2 + 1..n / 2 + 2,
            n / 2 + 2..n,
        ];
        let bytes: Vec<u64> = ranges
            .iter()
            .enumerate()
            .map(|(s, r)| {
                TrainingMemoryModel::stage_bytes_with(
                    &g,
                    r.clone(),
                    s,
                    k,
                    nm,
                    &sched,
                    RecomputePolicy::None,
                )
            })
            .collect();
        // The per-GPU aggregation is exactly "chunk sums, fixed
        // overhead counted once": GPU g hosts stages g and g + 2.
        let fixed = CUDNN_WORKSPACE_BYTES + FRAMEWORK_OVERHEAD_BYTES;
        let peaks = TrainingMemoryModel::per_gpu_peak_bytes_with(
            &g,
            &ranges,
            2,
            nm,
            &sched,
            RecomputePolicy::None,
        );
        assert_eq!(
            peaks,
            vec![bytes[0] + bytes[2] - fixed, bytes[1] + bytes[3] - fixed]
        );

        // Size a GPU to exactly the bigger joint peak: the pair fits
        // together, but the big chunk alone overflows its equal-split
        // half-budget — the uneven pairing only the joint check
        // admits.
        let mut gpu = hetpipe_cluster::GpuKind::TitanV.spec();
        gpu.memory_bytes = *peaks.iter().max().unwrap();
        let gpus = vec![gpu.clone(), gpu.clone()];
        assert!(TrainingMemoryModel::plan_fits_per_gpu(
            &g,
            &ranges,
            &gpus,
            nm,
            &sched,
            RecomputePolicy::None
        ));
        assert!(
            !TrainingMemoryModel::stage_fits_with(
                &g,
                ranges[0].clone(),
                0,
                k,
                nm,
                &gpu,
                &sched,
                RecomputePolicy::None
            ),
            "the big chunk must overflow its equal split — otherwise \
             the joint check adds nothing here"
        );
        // One byte less and the joint check refuses.
        let mut small = gpu;
        small.memory_bytes -= 1;
        assert!(!TrainingMemoryModel::plan_fits_per_gpu(
            &g,
            &ranges,
            &[small.clone(), small],
            nm,
            &sched,
            RecomputePolicy::None
        ));
    }

    #[test]
    fn per_gpu_peaks_aggregate_interleaved_chunks() {
        use hetpipe_schedule::Schedule;
        let g = vgg19(32);
        let n = g.len();
        // 4 GPUs, 2 chunks: 8 virtual stages of equal layer count.
        let per = n / 8;
        let ranges: Vec<_> = (0..8)
            .map(|i| i * per..if i == 7 { n } else { (i + 1) * per })
            .collect();
        let sched = Schedule::Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let peaks = TrainingMemoryModel::per_gpu_peak_bytes(&g, &ranges, 4, 4, &sched);
        assert_eq!(peaks.len(), 4);
        // Each GPU hosts 2 chunks: its peak exceeds either chunk alone
        // but counts the fixed workspace/framework overhead only once.
        let k = ranges.len();
        let lone = TrainingMemoryModel::stage_bytes_for(&g, ranges[0].clone(), 0, k, 4, &sched);
        assert!(peaks[0] > lone);
        let double_fixed =
            lone + TrainingMemoryModel::stage_bytes_for(&g, ranges[4].clone(), 4, k, 4, &sched);
        assert!(
            peaks[0] < double_fixed,
            "fixed overhead must not be double-counted"
        );
    }

    #[test]
    fn rematerialized_set_charged_max_across_colocated_chunks() {
        use hetpipe_schedule::Schedule;
        let g = vgg19(32);
        let n = g.len();
        let per = n / 8;
        let ranges: Vec<_> = (0..8)
            .map(|i| i * per..if i == 7 { n } else { (i + 1) * per })
            .collect();
        let sched = Schedule::Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let (gpus, nm, k) = (4usize, 4usize, 8usize);
        let rc = RecomputePolicy::BoundaryOnly;
        let fixed = CUDNN_WORKSPACE_BYTES + FRAMEWORK_OVERHEAD_BYTES;
        let peaks = TrainingMemoryModel::per_gpu_peak_bytes_with(&g, &ranges, gpus, nm, &sched, rc);
        for (gpu, &peak) in peaks.iter().enumerate() {
            let stages = [gpu, gpu + gpus];
            let totals: Vec<u64> = stages
                .iter()
                .map(|&s| {
                    TrainingMemoryModel::stage_bytes_with(
                        &g,
                        ranges[s].clone(),
                        s,
                        k,
                        nm,
                        &sched,
                        rc,
                    )
                })
                .collect();
            let remats: Vec<u64> = stages
                .iter()
                .map(|&s| {
                    TrainingMemoryModel::stage_rematerialized_bytes(
                        &g,
                        ranges[s].clone(),
                        s,
                        k,
                        nm,
                        &sched,
                        rc,
                    )
                })
                .collect();
            // The old behaviour summed both rematerialized sets; the
            // chunks share one serial GPU, so only the largest can be
            // live — the per-GPU peak charges exactly that.
            let sum_charged = totals.iter().sum::<u64>() - fixed;
            let expected = sum_charged - remats.iter().sum::<u64>() + remats.iter().max().unwrap();
            assert_eq!(peak, expected, "gpu {gpu}");
            if remats.iter().filter(|&&r| r > 0).count() == 2 {
                assert!(
                    peak < sum_charged,
                    "gpu {gpu}: max-charging must be strictly tighter when \
                     both chunks checkpoint"
                );
            }
        }
        // The bugfix consequence: a GPU sized exactly to the
        // max-charged peak admits the plan — the old sum-charging
        // rejected this same hardware.
        let mut gpu = hetpipe_cluster::GpuKind::TitanV.spec();
        gpu.memory_bytes = *peaks.iter().max().unwrap();
        let specs = vec![gpu.clone(); gpus];
        assert!(TrainingMemoryModel::plan_fits_per_gpu(
            &g, &ranges, &specs, nm, &sched, rc
        ));
        let mut small = gpu;
        small.memory_bytes -= 1;
        assert!(!TrainingMemoryModel::plan_fits_per_gpu(
            &g,
            &ranges,
            &vec![small; gpus],
            nm,
            &sched,
            rc
        ));
    }

    #[test]
    fn prefix_sum_bytes_match_naive_reference() {
        use hetpipe_schedule::Schedule;
        let g = vgg19(32);
        let n = g.len();
        let (k, nm) = (4, 4);
        for schedule in Schedule::ALL {
            for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                for stage in [0, k - 1] {
                    for (s, e) in [(0, n), (3, 9), (n / 2, n), (5, 6)] {
                        assert_eq!(
                            TrainingMemoryModel::stage_bytes_with(
                                &g,
                                s..e,
                                stage,
                                k,
                                nm,
                                &schedule,
                                recompute
                            ),
                            TrainingMemoryModel::stage_bytes_with_naive(
                                &g,
                                s..e,
                                stage,
                                k,
                                nm,
                                &schedule,
                                recompute
                            ),
                            "{schedule} {recompute} stage {stage} {s}..{e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stage_fits_respects_capacity() {
        let g = resnet152(32);
        // The whole model as one stage with deep concurrency cannot fit
        // the smallest GPU.
        assert!(!TrainingMemoryModel::stage_fits(
            &g,
            0..g.len(),
            0,
            1,
            1,
            &GpuKind::Rtx2060.spec()
        ));
        // A tiny range fits easily.
        assert!(TrainingMemoryModel::stage_fits(
            &g,
            0..1,
            0,
            4,
            1,
            &GpuKind::Rtx2060.spec()
        ));
    }
}
