//! The model zoo: the paper's two evaluation models plus extras.
//!
//! Section 8.1 of the paper evaluates ResNet-152 and VGG-19 on ImageNet
//! with a minibatch size of 32. The builders below reconstruct those
//! architectures layer by layer; the resulting parameter totals match the
//! sizes the paper quotes in Section 8.3 (VGG-19 ≈ 548 MB, ResNet-152
//! ≈ 230 MB — the paper reports binary megabytes).

use crate::builder::ConvNetBuilder;
use crate::graph::ModelGraph;
use crate::layer::{Layer, LayerKind};

/// ImageNet input resolution.
const IMAGENET_HW: usize = 224;
/// ImageNet class count.
const IMAGENET_CLASSES: usize = 1000;

/// Builds VGG-19 (configuration E of Simonyan & Zisserman) for ImageNet
/// at the given minibatch size.
///
/// 16 convolutional layers in five groups separated by max-pools, then
/// two 4096-wide fully-connected layers and the classifier. The three
/// dense layers carry ~86% of the 143.7 M parameters, which is what
/// makes VGG-19 the paper's "large parameter set" stress case for
/// parameter synchronization (548 MB pushed per wave).
///
/// # Examples
///
/// ```
/// let g = hetpipe_model::vgg19(32);
/// let mib = g.total_param_bytes() as f64 / (1024.0 * 1024.0);
/// assert!((mib - 548.0).abs() < 5.0, "paper quotes 548 MB: {mib}");
/// ```
pub fn vgg19(batch: usize) -> ModelGraph {
    let mut b = ConvNetBuilder::new("VGG-19", batch, 3, IMAGENET_HW, IMAGENET_HW);
    // Group 1: 64 channels.
    b.conv("conv1_1", 64, 3, 1, 1)
        .conv("conv1_2", 64, 3, 1, 1)
        .pool("pool1", 2, 2);
    // Group 2: 128 channels.
    b.conv("conv2_1", 128, 3, 1, 1)
        .conv("conv2_2", 128, 3, 1, 1)
        .pool("pool2", 2, 2);
    // Group 3: 256 channels, four convs.
    b.conv("conv3_1", 256, 3, 1, 1)
        .conv("conv3_2", 256, 3, 1, 1)
        .conv("conv3_3", 256, 3, 1, 1)
        .conv("conv3_4", 256, 3, 1, 1)
        .pool("pool3", 2, 2);
    // Group 4: 512 channels, four convs.
    b.conv("conv4_1", 512, 3, 1, 1)
        .conv("conv4_2", 512, 3, 1, 1)
        .conv("conv4_3", 512, 3, 1, 1)
        .conv("conv4_4", 512, 3, 1, 1)
        .pool("pool4", 2, 2);
    // Group 5: 512 channels, four convs.
    b.conv("conv5_1", 512, 3, 1, 1)
        .conv("conv5_2", 512, 3, 1, 1)
        .conv("conv5_3", 512, 3, 1, 1)
        .conv("conv5_4", 512, 3, 1, 1)
        .pool("pool5", 2, 2);
    // Classifier.
    b.flatten("flatten")
        .linear("fc6", 4096)
        .linear("fc7", 4096)
        .linear("fc8", IMAGENET_CLASSES)
        .loss("softmax", IMAGENET_CLASSES);
    b.build()
}

/// Builds a ResNet for ImageNet with the given per-stage block counts.
fn resnet(name: &str, batch: usize, blocks: [usize; 4]) -> ModelGraph {
    let mut b = ConvNetBuilder::new(name, batch, 3, IMAGENET_HW, IMAGENET_HW);
    b.conv("conv1", 64, 7, 2, 3).pool("pool1", 2, 2);
    let mids = [64, 128, 256, 512];
    let outs = [256, 512, 1024, 2048];
    for stage in 0..4 {
        for i in 0..blocks[stage] {
            // The first block of stages 2-4 downsamples.
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            let lname = format!("res{}{}", stage + 2, block_suffix(i));
            b.bottleneck(&lname, mids[stage], outs[stage], stride);
        }
    }
    b.global_avg_pool("avgpool")
        .flatten("flatten")
        .linear("fc", IMAGENET_CLASSES)
        .loss("softmax", IMAGENET_CLASSES);
    b.build()
}

fn block_suffix(i: usize) -> String {
    if i == 0 {
        "a".to_string()
    } else {
        format!("b{i}")
    }
}

/// Builds ResNet-152 for ImageNet at the given minibatch size.
///
/// Stage block counts (3, 8, 36, 3) per He et al.; ~60 M parameters
/// (the paper quotes 230 MB). At batch 32 its training footprint
/// exceeds the 6 GB of a GeForce RTX 2060, which is why the paper's
/// Horovod baseline can only use 12 of the 16 GPUs (Section 8.3).
///
/// # Examples
///
/// ```
/// let g = hetpipe_model::resnet152(32);
/// let mib = g.total_param_bytes() as f64 / (1024.0 * 1024.0);
/// assert!((mib - 230.0).abs() < 15.0, "paper quotes 230 MB: {mib}");
/// ```
pub fn resnet152(batch: usize) -> ModelGraph {
    resnet("ResNet-152", batch, [3, 8, 36, 3])
}

/// Builds ResNet-50 for ImageNet (stage blocks 3, 4, 6, 3).
///
/// Not part of the paper's evaluation; included as a smaller workload
/// for examples and ablations.
pub fn resnet50(batch: usize) -> ModelGraph {
    resnet("ResNet-50", batch, [3, 4, 6, 3])
}

/// Builds a BERT-style Transformer encoder for sequence classification.
///
/// Not part of the paper's evaluation, but squarely in its motivation:
/// Section 1 cites attention models among the "continuously growing"
/// networks that outgrow single GPUs. Each encoder block (multi-head
/// attention + feed-forward + layer norms) is one partitionable unit;
/// `transformer_encoder(12, 768, 12, 128, 32)` approximates BERT-Base
/// (~110 M parameters).
///
/// # Examples
///
/// ```
/// let g = hetpipe_model::transformer_encoder(12, 768, 12, 128, 32);
/// let m = g.total_param_bytes() / 4 / 1_000_000;
/// assert!((85..=115).contains(&m), "BERT-Base-ish parameter count: {m}M");
/// ```
pub fn transformer_encoder(
    layers: usize,
    hidden: usize,
    heads: usize,
    seq: usize,
    batch: usize,
) -> ModelGraph {
    let f32b = 4u64;
    let b = batch as f64;
    let (h, s) = (hidden as f64, seq as f64);
    let mut units = Vec::new();

    // Token + position embeddings (vocabulary 30k, as BERT).
    let vocab = 30_000usize;
    let act = (batch * seq * hidden) as u64 * f32b;
    units.push(Layer {
        name: "embeddings".into(),
        kind: LayerKind::Linear,
        param_bytes: ((vocab + seq) * hidden) as u64 * f32b,
        activation_bytes: act,
        stored_bytes: act,
        // Embedding lookup is a gather: memory-bound, negligible FLOPs.
        fwd_flops: (batch * seq * hidden) as f64,
        bwd_flops: (batch * seq * hidden) as f64,
        membound_bytes: act * 2,
        kernels: 3,
    });

    for i in 0..layers {
        // Attention: 4 projections (Q, K, V, O) of h x h, plus the
        // score/value matmuls (2 * s^2 * h per sequence); FFN: two
        // h x 4h GEMMs; 2 layer norms.
        let proj_macs = 4.0 * h * h * s * b;
        let attn_macs = 2.0 * s * s * h * b;
        let ffn_macs = 2.0 * 4.0 * h * h * s * b;
        let fwd_flops = 2.0 * (proj_macs + attn_macs + ffn_macs);

        let params = (4 * hidden * hidden + 8 * hidden * hidden + 4 * hidden) as u64 * f32b;
        // Stored for backward: block I/O, FFN intermediate (4h), and
        // the per-head attention probabilities (heads x s x s).
        let stored = ((batch * seq * hidden * 6 + batch * heads * seq * seq) as u64) * f32b;
        units.push(Layer {
            name: format!("encoder{i}"),
            kind: LayerKind::TransformerBlock,
            param_bytes: params,
            activation_bytes: act,
            stored_bytes: stored,
            fwd_flops,
            bwd_flops: 2.0 * fwd_flops,
            membound_bytes: act * 6,
            kernels: 16,
        });
    }

    // Pooled classifier head.
    units.push(Layer {
        name: "classifier".into(),
        kind: LayerKind::Linear,
        param_bytes: (hidden * 2) as u64 * f32b,
        activation_bytes: (batch * 2) as u64 * f32b,
        stored_bytes: (batch * 2) as u64 * f32b,
        fwd_flops: 2.0 * h * 2.0 * b,
        bwd_flops: 4.0 * h * 2.0 * b,
        membound_bytes: (batch * hidden) as u64 * f32b,
        kernels: 2,
    });
    units.push(Layer {
        name: "softmax".into(),
        kind: LayerKind::Loss,
        param_bytes: 0,
        activation_bytes: (batch * 2) as u64 * f32b,
        stored_bytes: (batch * 2) as u64 * f32b,
        fwd_flops: (10 * batch) as f64,
        bwd_flops: (4 * batch) as f64,
        membound_bytes: (batch * 2) as u64 * f32b * 2,
        kernels: 2,
    });

    ModelGraph::new(
        format!("Transformer-{layers}L-{hidden}H"),
        batch,
        (batch * seq) as u64 * f32b,
        units,
    )
}

/// Builds a plain multi-layer perceptron: `dims[0] -> dims[1] -> …`,
/// with a softmax loss over the last width.
///
/// Used by the real threaded trainer (`hetpipe-train`) and as a small,
/// exactly-analyzable workload in partitioner tests.
///
/// # Panics
///
/// Panics if fewer than two widths are given.
pub fn mlp(batch: usize, dims: &[usize]) -> ModelGraph {
    assert!(dims.len() >= 2, "an MLP needs an input and an output width");
    let f32b = 4u64;
    let mut layers = Vec::new();
    for (i, win) in dims.windows(2).enumerate() {
        let (d_in, d_out) = (win[0], win[1]);
        let macs = (d_in * d_out * batch) as f64;
        layers.push(Layer {
            name: format!("fc{}", i + 1),
            kind: LayerKind::Linear,
            param_bytes: ((d_in * d_out) + d_out) as u64 * f32b,
            activation_bytes: (batch * d_out) as u64 * f32b,
            stored_bytes: (batch * d_out) as u64 * f32b,
            fwd_flops: 2.0 * macs,
            bwd_flops: 4.0 * macs,
            membound_bytes: (batch * d_out) as u64 * f32b,
            kernels: 2,
        });
    }
    let classes = *dims.last().expect("non-empty dims");
    layers.push(Layer {
        name: "softmax".into(),
        kind: LayerKind::Loss,
        param_bytes: 0,
        activation_bytes: (batch * classes) as u64 * f32b,
        stored_bytes: (batch * classes) as u64 * f32b,
        fwd_flops: (5 * batch * classes) as f64,
        bwd_flops: (2 * batch * classes) as f64,
        membound_bytes: (batch * classes) as u64 * f32b * 2,
        kernels: 2,
    });
    ModelGraph::new(
        format!("MLP-{}", dims.len() - 1),
        batch,
        (batch * dims[0]) as u64 * f32b,
        layers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    #[test]
    fn vgg19_matches_paper_parameter_size() {
        let g = vgg19(32);
        let mib = g.total_param_bytes() as f64 / MIB;
        // Section 8.3: "VGG-19 whose parameter size is 548MB".
        assert!((mib - 548.0).abs() < 5.0, "VGG-19 params = {mib:.1} MiB");
        // 143.7M parameters, per Simonyan & Zisserman.
        let m = g.total_param_bytes() / 4 / 1_000_000;
        assert_eq!(m, 143);
    }

    #[test]
    fn resnet152_matches_paper_parameter_size() {
        let g = resnet152(32);
        let mib = g.total_param_bytes() as f64 / MIB;
        // Section 8.3: "ResNet-152 whose parameter size is 230MB".
        assert!(
            (mib - 230.0).abs() < 15.0,
            "ResNet-152 params = {mib:.1} MiB"
        );
    }

    #[test]
    fn resnet152_has_152_conv_layers() {
        // 152 = 1 (stem) + 3*(3+8+36+3) (three convs per bottleneck) + 1 (fc).
        let g = resnet152(32);
        let blocks = g
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::ResidualBlock)
            .count();
        assert_eq!(blocks, 50);
        assert_eq!(1 + 3 * blocks + 1, 152);
    }

    #[test]
    fn vgg19_has_19_weight_layers() {
        let g = vgg19(32);
        let convs = g
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::Conv2d)
            .count();
        let fcs = g
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::Linear)
            .count();
        assert_eq!(convs, 16);
        assert_eq!(fcs, 3);
        assert_eq!(convs + fcs, 19);
    }

    #[test]
    fn vgg19_dense_layers_dominate_params() {
        let g = vgg19(32);
        let dense: u64 = g
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::Linear)
            .map(|l| l.param_bytes)
            .sum();
        let frac = dense as f64 / g.total_param_bytes() as f64;
        assert!(frac > 0.8, "FC layers carry {:.0}% of params", frac * 100.0);
    }

    #[test]
    fn resnet_flops_scale_with_depth() {
        let r50 = resnet50(32);
        let r152 = resnet152(32);
        let ratio = r152.total_flops() / r50.total_flops();
        // Published GFLOPs: ~11.5 vs ~4.1 forward => ratio ~2.8.
        assert!(ratio > 2.2 && ratio < 3.4, "ratio = {ratio:.2}");
    }

    #[test]
    fn vgg19_flops_per_image_near_published() {
        let g = vgg19(1);
        let fwd: f64 = g.layers().iter().map(|l| l.fwd_flops).sum();
        let gflops = fwd / 1e9;
        // Published forward cost ~19.6 GFLOPs/image (2x MACs).
        assert!(
            (gflops - 39.2).abs() < 4.0,
            "VGG-19 fwd = {gflops:.1} GFLOPs (2x MAC counting)"
        );
    }

    #[test]
    fn batch_scales_activations_not_params() {
        let a = vgg19(16);
        let b = vgg19(32);
        assert_eq!(a.total_param_bytes(), b.total_param_bytes());
        assert_eq!(
            2 * a.layers()[0].activation_bytes,
            b.layers()[0].activation_bytes
        );
        assert!((2.0 * a.total_flops() - b.total_flops()).abs() / b.total_flops() < 1e-12);
    }

    #[test]
    fn transformer_encoder_profile() {
        let g = transformer_encoder(12, 768, 12, 128, 32);
        assert_eq!(g.len(), 1 + 12 + 2, "embeddings + blocks + head + loss");
        // Every encoder block carries identical parameters.
        let blocks: Vec<&Layer> = g
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::TransformerBlock)
            .collect();
        assert_eq!(blocks.len(), 12);
        assert!(blocks
            .windows(2)
            .all(|w| w[0].param_bytes == w[1].param_bytes));
        // ~7M parameters per block (12 * h^2 + norms at h = 768).
        let per_block = blocks[0].param_bytes / 4;
        assert!((6_500_000..7_500_000).contains(&per_block), "{per_block}");
        // Attention probabilities make stored bytes exceed plain I/O.
        assert!(blocks[0].stored_bytes > blocks[0].activation_bytes * 4);
    }

    #[test]
    fn transformer_partitionable_on_testbed_vw() {
        // The encoder splits cleanly across a heterogeneous VW.
        use hetpipe_cluster::GpuKind;
        let g = transformer_encoder(24, 1024, 16, 256, 32);
        let total = g.total_flops();
        assert!(total > 0.0);
        let _ = GpuKind::ALL;
        assert!(
            g.total_param_bytes() > (300u64 << 20),
            "a deliberately large model"
        );
    }

    #[test]
    fn mlp_builder() {
        let g = mlp(8, &[784, 256, 10]);
        assert_eq!(g.len(), 3, "two linears + loss");
        assert_eq!(
            g.total_param_bytes(),
            ((784 * 256 + 256) + (256 * 10 + 10)) as u64 * 4
        );
        assert_eq!(g.input_bytes, 8 * 784 * 4);
    }

    #[test]
    #[should_panic(expected = "an MLP needs")]
    fn mlp_rejects_single_width() {
        let _ = mlp(8, &[784]);
    }

    #[test]
    fn resnet_activation_memory_exceeds_vgg() {
        // The crux of the paper's memory gate: ResNet-152 stores more
        // activation bytes than VGG-19 despite fewer parameters.
        let r = resnet152(32);
        let v = vgg19(32);
        assert!(r.total_stored_bytes() > v.total_stored_bytes());
        assert!(r.total_param_bytes() < v.total_param_bytes());
    }
}
