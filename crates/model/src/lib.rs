//! DNN model graphs with analytic compute and memory profiles.
//!
//! The paper's partitioner (Section 7) consumes a per-layer profile of
//! the model: computation time per layer per GPU type, per-layer memory
//! usage, and the activation sizes crossing each layer boundary. The
//! authors obtain these by profiling TensorFlow; we derive them
//! analytically from the published architectures, which produces the same
//! kind of table the partitioner needs:
//!
//! - [`layer`] — partitionable layer units with parameter bytes,
//!   activation bytes, FLOPs, and launch counts.
//! - [`graph`] — a sequential model graph (the paper partitions models
//!   into contiguous layer ranges).
//! - [`builder`] — a shape-tracking convnet builder used by the zoo.
//! - [`zoo`] — ResNet-152, ResNet-50, VGG-19 (the paper's two
//!   evaluation models plus one extra), and MLPs for the real trainer.
//! - [`profile`] — per-GPU compute-time model (roofline + per-kernel
//!   overhead, with per-layer-kind efficiency multipliers).
//! - [`memory`] — training-memory model reproducing the paper's memory
//!   gates (e.g. ResNet-152 at batch 32 does not fit a 6 GB RTX 2060,
//!   Section 8.3).

pub mod builder;
pub mod graph;
pub mod layer;
pub mod memory;
pub mod profile;
pub mod zoo;

pub use graph::ModelGraph;
pub use layer::{Layer, LayerKind};
pub use memory::{StageMemoryTerms, TrainingMemoryModel};
pub use profile::LayerProfile;
pub use zoo::{mlp, resnet152, resnet50, transformer_encoder, vgg19};
