//! Sequential model graphs.
//!
//! HetPipe (like PipeDream and GPipe) partitions the model into `k`
//! contiguous ranges of layers, so the graph is an ordered list of
//! [`Layer`] units plus the input activation size (what stage 1
//! receives from the data loader).

use crate::layer::Layer;

/// A DNN model as an ordered list of partitionable layer units.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    /// Model name (e.g. `"VGG-19"`).
    pub name: String,
    /// Minibatch size the profile was built for.
    pub batch_size: usize,
    /// Input bytes for one minibatch (images entering stage 1).
    pub input_bytes: u64,
    layers: Vec<Layer>,
}

impl ModelGraph {
    /// Creates a graph from parts.
    pub fn new(
        name: impl Into<String>,
        batch_size: usize,
        input_bytes: u64,
        layers: Vec<Layer>,
    ) -> Self {
        ModelGraph {
            name: name.into(),
            batch_size,
            input_bytes,
            layers,
        }
    }

    /// The layer units in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layer units.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable-parameter bytes of the model.
    ///
    /// The paper quotes 548 MB for VGG-19 and 230 MB for ResNet-152
    /// (Section 8.3); the zoo tests pin these totals.
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Total FLOPs of one training step (forward + backward) per minibatch.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.total_flops()).sum()
    }

    /// Total bytes held for backward across the whole model (one
    /// in-flight minibatch).
    pub fn total_stored_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.stored_bytes).sum()
    }

    /// The activation bytes crossing the boundary after layer `i`
    /// (i.e. between layers `i` and `i + 1`).
    ///
    /// For `i == len() - 1` this is the final output (loss/labels),
    /// which never crosses a pipeline boundary.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn boundary_bytes(&self, i: usize) -> u64 {
        self.layers[i].activation_bytes
    }

    /// The input-activation bytes of layer `i`: the model input for
    /// `i == 0`, otherwise the output of layer `i - 1`.
    pub fn input_bytes_of(&self, i: usize) -> u64 {
        if i == 0 {
            self.input_bytes
        } else {
            self.layers[i - 1].activation_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn tiny() -> ModelGraph {
        let mk = |name: &str, act: u64, params: u64| Layer {
            name: name.into(),
            kind: LayerKind::Conv2d,
            param_bytes: params,
            activation_bytes: act,
            stored_bytes: act,
            fwd_flops: 10.0,
            bwd_flops: 20.0,
            membound_bytes: 0,
            kernels: 1,
        };
        ModelGraph::new(
            "tiny",
            8,
            100,
            vec![mk("a", 50, 4), mk("b", 30, 8), mk("c", 10, 12)],
        )
    }

    #[test]
    fn totals() {
        let g = tiny();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.total_param_bytes(), 24);
        assert_eq!(g.total_flops(), 90.0);
        assert_eq!(g.total_stored_bytes(), 90);
    }

    #[test]
    fn boundaries() {
        let g = tiny();
        assert_eq!(g.input_bytes_of(0), 100);
        assert_eq!(g.input_bytes_of(1), 50);
        assert_eq!(g.boundary_bytes(1), 30);
        assert_eq!(g.input_bytes_of(2), 30);
    }
}
