//! Sequential model graphs.
//!
//! HetPipe (like PipeDream and GPipe) partitions the model into `k`
//! contiguous ranges of layers, so the graph is an ordered list of
//! [`Layer`] units plus the input activation size (what stage 1
//! receives from the data loader).

use crate::layer::Layer;

/// A DNN model as an ordered list of partitionable layer units.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    /// Model name (e.g. `"VGG-19"`).
    pub name: String,
    /// Minibatch size the profile was built for.
    pub batch_size: usize,
    /// Input bytes for one minibatch (images entering stage 1).
    pub input_bytes: u64,
    layers: Vec<Layer>,
    /// Prefix sums of `param_bytes` (`len() + 1` entries): layer-range
    /// byte totals are the partition DP's innermost memory probe, so
    /// they must be O(1) range queries rather than per-call
    /// re-summations.
    prefix_param: Vec<u64>,
    /// Prefix sums of `stored_bytes` (`len() + 1` entries).
    prefix_stored: Vec<u64>,
}

impl ModelGraph {
    /// Creates a graph from parts.
    pub fn new(
        name: impl Into<String>,
        batch_size: usize,
        input_bytes: u64,
        layers: Vec<Layer>,
    ) -> Self {
        let mut prefix_param = Vec::with_capacity(layers.len() + 1);
        let mut prefix_stored = Vec::with_capacity(layers.len() + 1);
        let (mut params, mut stored) = (0u64, 0u64);
        prefix_param.push(0);
        prefix_stored.push(0);
        for l in &layers {
            params += l.param_bytes;
            stored += l.stored_bytes;
            prefix_param.push(params);
            prefix_stored.push(stored);
        }
        ModelGraph {
            name: name.into(),
            batch_size,
            input_bytes,
            layers,
            prefix_param,
            prefix_stored,
        }
    }

    /// The layer units in execution order.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layer units.
    #[inline]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable-parameter bytes of the model.
    ///
    /// The paper quotes 548 MB for VGG-19 and 230 MB for ResNet-152
    /// (Section 8.3); the zoo tests pin these totals.
    pub fn total_param_bytes(&self) -> u64 {
        self.param_bytes_in(0..self.layers.len())
    }

    /// Total FLOPs of one training step (forward + backward) per minibatch.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.total_flops()).sum()
    }

    /// Total bytes held for backward across the whole model (one
    /// in-flight minibatch).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes_in(0..self.layers.len())
    }

    /// Trainable-parameter bytes of the contiguous layer range — an
    /// O(1) prefix-sum range query (the memory model's per-stage probe
    /// sits in the partition DP's innermost loop).
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()`.
    #[inline]
    pub fn param_bytes_in(&self, range: std::ops::Range<usize>) -> u64 {
        self.prefix_param[range.end] - self.prefix_param[range.start]
    }

    /// Stored-activation bytes (held for backward) of the contiguous
    /// layer range for one in-flight minibatch — an O(1) prefix-sum
    /// range query.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()`.
    #[inline]
    pub fn stored_bytes_in(&self, range: std::ops::Range<usize>) -> u64 {
        self.prefix_stored[range.end] - self.prefix_stored[range.start]
    }

    /// The activation bytes crossing the boundary after layer `i`
    /// (i.e. between layers `i` and `i + 1`).
    ///
    /// For `i == len() - 1` this is the final output (loss/labels),
    /// which never crosses a pipeline boundary.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn boundary_bytes(&self, i: usize) -> u64 {
        self.layers[i].activation_bytes
    }

    /// The input-activation bytes of layer `i`: the model input for
    /// `i == 0`, otherwise the output of layer `i - 1`.
    #[inline]
    pub fn input_bytes_of(&self, i: usize) -> u64 {
        if i == 0 {
            self.input_bytes
        } else {
            self.layers[i - 1].activation_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    fn tiny() -> ModelGraph {
        let mk = |name: &str, act: u64, params: u64| Layer {
            name: name.into(),
            kind: LayerKind::Conv2d,
            param_bytes: params,
            activation_bytes: act,
            stored_bytes: act,
            fwd_flops: 10.0,
            bwd_flops: 20.0,
            membound_bytes: 0,
            kernels: 1,
        };
        ModelGraph::new(
            "tiny",
            8,
            100,
            vec![mk("a", 50, 4), mk("b", 30, 8), mk("c", 10, 12)],
        )
    }

    #[test]
    fn totals() {
        let g = tiny();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.total_param_bytes(), 24);
        assert_eq!(g.total_flops(), 90.0);
        assert_eq!(g.total_stored_bytes(), 90);
    }

    #[test]
    fn range_queries_match_direct_sums() {
        let g = tiny();
        for start in 0..=g.len() {
            for end in start..=g.len() {
                let params: u64 = g.layers()[start..end].iter().map(|l| l.param_bytes).sum();
                let stored: u64 = g.layers()[start..end].iter().map(|l| l.stored_bytes).sum();
                assert_eq!(g.param_bytes_in(start..end), params, "{start}..{end}");
                assert_eq!(g.stored_bytes_in(start..end), stored, "{start}..{end}");
            }
        }
    }

    #[test]
    fn boundaries() {
        let g = tiny();
        assert_eq!(g.input_bytes_of(0), 100);
        assert_eq!(g.input_bytes_of(1), 50);
        assert_eq!(g.boundary_bytes(1), 30);
        assert_eq!(g.input_bytes_of(2), 30);
    }
}
