//! Shape-tracking builder for convolutional networks.
//!
//! The zoo constructs models layer by layer; the builder tracks the
//! activation shape `(batch, channels, height, width)` and derives each
//! unit's analytic profile (parameters, FLOPs, activation bytes) from
//! the architecture alone — the same quantities the paper measures by
//! profiling TensorFlow.

use crate::graph::ModelGraph;
use crate::layer::{Layer, LayerKind};

/// Bytes per f32 element.
pub const F32: u64 = 4;

/// Fraction of a plain conv unit's output that must stay resident for
/// backward, relative to the output size.
///
/// A conv+ReLU unit keeps its output (ReLU can run in place; the mask is
/// recovered from the output sign); a small surcharge covers im2col /
/// cuDNN bookkeeping.
pub const CONV_STORAGE_FACTOR: f64 = 1.15;

/// Residency factor for residual bottleneck blocks.
///
/// Batch-norm layers save normalized inputs and per-batch statistics for
/// backward in addition to the conv outputs, which is the dominant
/// reason ResNet-152 at batch 32 exceeds the 6 GB of a GeForce RTX 2060
/// while the (parameter-heavier) VGG-19 fits — the memory gate the
/// paper's Section 8.3 and Table 4 rely on. Calibrated so the modelled
/// footprint lands between 6 GB and 8 GB (ResNet-152 must still fit the
/// 8 GB Quadro P4000, which Horovod uses).
pub const RESNET_STORAGE_FACTOR: f64 = 1.72;

/// A shape-tracking convnet builder.
#[derive(Debug)]
pub struct ConvNetBuilder {
    name: String,
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    input_bytes: u64,
    layers: Vec<Layer>,
}

impl ConvNetBuilder {
    /// Starts a model taking `batch` images of shape `c x h x w`.
    pub fn new(name: impl Into<String>, batch: usize, c: usize, h: usize, w: usize) -> Self {
        let input_bytes = (batch * c * h * w) as u64 * F32;
        ConvNetBuilder {
            name: name.into(),
            batch,
            c,
            h,
            w,
            input_bytes,
            layers: Vec::new(),
        }
    }

    /// Current activation element count for the whole minibatch.
    fn act_elems(&self) -> u64 {
        (self.batch * self.c * self.h * self.w) as u64
    }

    /// Adds a convolution (fused bias + ReLU) with square kernel `k`,
    /// stride `stride`, and "same"-style padding `pad`.
    pub fn conv(
        &mut self,
        name: &str,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        let oh = (self.h + 2 * pad - k) / stride + 1;
        let ow = (self.w + 2 * pad - k) / stride + 1;
        let macs = (k * k * self.c * out_c) as f64 * (oh * ow * self.batch) as f64;
        let fwd_flops = 2.0 * macs;
        let out_elems = (self.batch * out_c * oh * ow) as u64;
        let params = ((k * k * self.c * out_c) + out_c) as u64 * F32;
        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::Conv2d,
            param_bytes: params,
            activation_bytes: out_elems * F32,
            stored_bytes: (out_elems as f64 * F32 as f64 * CONV_STORAGE_FACTOR) as u64,
            fwd_flops,
            bwd_flops: 2.0 * fwd_flops,
            membound_bytes: out_elems * F32 * 2,
            kernels: 2,
        });
        self.c = out_c;
        self.h = oh;
        self.w = ow;
        self
    }

    /// Adds a max-pooling layer with square window `k` and stride `stride`.
    pub fn pool(&mut self, name: &str, k: usize, stride: usize) -> &mut Self {
        let oh = (self.h - k) / stride + 1;
        let ow = (self.w - k) / stride + 1;
        let in_elems = self.act_elems();
        let out_elems = (self.batch * self.c * oh * ow) as u64;
        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            param_bytes: 0,
            activation_bytes: out_elems * F32,
            // Pooling keeps argmax indices (one per output element).
            stored_bytes: out_elems * F32 * 2,
            fwd_flops: in_elems as f64,
            bwd_flops: in_elems as f64,
            membound_bytes: (in_elems + out_elems) * F32,
            kernels: 1,
        });
        self.h = oh;
        self.w = ow;
        self
    }

    /// Adds a global average pool collapsing spatial dims to 1x1.
    pub fn global_avg_pool(&mut self, name: &str) -> &mut Self {
        let in_elems = self.act_elems();
        let out_elems = (self.batch * self.c) as u64;
        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            param_bytes: 0,
            activation_bytes: out_elems * F32,
            stored_bytes: out_elems * F32,
            fwd_flops: in_elems as f64,
            bwd_flops: in_elems as f64,
            membound_bytes: (in_elems + out_elems) * F32,
            kernels: 1,
        });
        self.h = 1;
        self.w = 1;
        self
    }

    /// Flattens `c x h x w` into a vector (no compute, no parameters).
    pub fn flatten(&mut self, name: &str) -> &mut Self {
        let elems = self.act_elems();
        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::Flatten,
            param_bytes: 0,
            activation_bytes: elems * F32,
            stored_bytes: 0,
            fwd_flops: 0.0,
            bwd_flops: 0.0,
            membound_bytes: 0,
            kernels: 0,
        });
        self.c = self.c * self.h * self.w;
        self.h = 1;
        self.w = 1;
        self
    }

    /// Adds a fully-connected layer (fused bias + optional ReLU).
    pub fn linear(&mut self, name: &str, out: usize) -> &mut Self {
        let in_dim = self.c;
        let macs = (in_dim * out * self.batch) as f64;
        let out_elems = (self.batch * out) as u64;
        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::Linear,
            param_bytes: ((in_dim * out) + out) as u64 * F32,
            activation_bytes: out_elems * F32,
            stored_bytes: out_elems * F32,
            fwd_flops: 2.0 * macs,
            bwd_flops: 4.0 * macs,
            membound_bytes: out_elems * F32,
            kernels: 2,
        });
        self.c = out;
        self
    }

    /// Adds the final softmax cross-entropy loss over `classes` classes.
    pub fn loss(&mut self, name: &str, classes: usize) -> &mut Self {
        debug_assert_eq!(self.c, classes, "loss expects logits of width `classes`");
        let elems = (self.batch * classes) as u64;
        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::Loss,
            param_bytes: 0,
            activation_bytes: elems * F32,
            stored_bytes: elems * F32,
            fwd_flops: (5 * elems) as f64,
            bwd_flops: (2 * elems) as f64,
            membound_bytes: elems * F32 * 2,
            kernels: 2,
        });
        self
    }

    /// Adds a ResNet v1.5 bottleneck block: `1x1 -> 3x3(stride) -> 1x1`
    /// with batch-norms, ReLUs, and a (projected, when shapes change)
    /// skip connection, as a single partitionable unit.
    pub fn bottleneck(
        &mut self,
        name: &str,
        mid_c: usize,
        out_c: usize,
        stride: usize,
    ) -> &mut Self {
        let in_c = self.c;
        let (h, w) = (self.h, self.w);
        let (oh, ow) = (h / stride, w / stride);
        let b = self.batch as f64;

        // Three convolutions (v1.5 puts the stride on the 3x3).
        let macs1 = (in_c * mid_c) as f64 * (h * w) as f64 * b;
        let macs2 = 9.0 * (mid_c * mid_c) as f64 * (oh * ow) as f64 * b;
        let macs3 = (mid_c * out_c) as f64 * (oh * ow) as f64 * b;
        let needs_proj = in_c != out_c || stride != 1;
        let macs_proj = if needs_proj {
            (in_c * out_c) as f64 * (oh * ow) as f64 * b
        } else {
            0.0
        };
        let fwd_flops = 2.0 * (macs1 + macs2 + macs3 + macs_proj);

        // Internal activations (per minibatch, in elements).
        let a1 = (self.batch * mid_c * h * w) as u64;
        let a2 = (self.batch * mid_c * oh * ow) as u64;
        let a3 = (self.batch * out_c * oh * ow) as u64;
        let a_proj = if needs_proj { a3 } else { 0 };
        let internal_elems = a1 + a2 + a3 + a_proj;

        // Parameters: convs + 2 per-channel BN vectors per conv.
        let conv_params = in_c * mid_c
            + 9 * mid_c * mid_c
            + mid_c * out_c
            + if needs_proj { in_c * out_c } else { 0 };
        let bn_params = 2 * (mid_c + mid_c + out_c + if needs_proj { out_c } else { 0 });

        self.layers.push(Layer {
            name: name.into(),
            kind: LayerKind::ResidualBlock,
            param_bytes: (conv_params + bn_params) as u64 * F32,
            activation_bytes: a3 * F32,
            stored_bytes: (internal_elems as f64 * F32 as f64 * RESNET_STORAGE_FACTOR) as u64,
            fwd_flops,
            bwd_flops: 2.0 * fwd_flops,
            // Each BN + ReLU streams its activation ~2x (read + write).
            membound_bytes: internal_elems * F32 * 4,
            kernels: if needs_proj { 13 } else { 10 },
        });
        self.c = out_c;
        self.h = oh;
        self.w = ow;
        self
    }

    /// Finalizes the model.
    pub fn build(self) -> ModelGraph {
        ModelGraph::new(self.name, self.batch, self.input_bytes, self.layers)
    }

    /// Current shape, for tests.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.batch, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_and_params() {
        let mut b = ConvNetBuilder::new("t", 2, 3, 224, 224);
        b.conv("c1", 64, 3, 1, 1);
        assert_eq!(b.shape(), (2, 64, 224, 224));
        let l = &b.layers[0];
        // 3*3*3*64 + 64 weights.
        assert_eq!(l.param_bytes, (3 * 3 * 3 * 64 + 64) as u64 * 4);
        // Activation: 2 * 64 * 224 * 224 floats.
        assert_eq!(l.activation_bytes, 2 * 64 * 224 * 224 * 4);
        // FLOPs: 2 * K * K * Cin * Cout * OH * OW * B.
        let expect = 2.0 * 9.0 * 3.0 * 64.0 * 224.0 * 224.0 * 2.0;
        assert!((l.fwd_flops - expect).abs() < 1.0);
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let mut b = ConvNetBuilder::new("t", 1, 3, 224, 224);
        b.conv("c", 64, 7, 2, 3);
        assert_eq!(b.shape(), (1, 64, 112, 112));
    }

    #[test]
    fn pool_halves() {
        let mut b = ConvNetBuilder::new("t", 1, 64, 224, 224);
        b.pool("p", 2, 2);
        assert_eq!(b.shape(), (1, 64, 112, 112));
    }

    #[test]
    fn flatten_then_linear() {
        let mut b = ConvNetBuilder::new("t", 4, 512, 7, 7);
        b.flatten("f").linear("fc", 4096);
        assert_eq!(b.shape(), (4, 4096, 1, 1));
        let fc = &b.layers[1];
        assert_eq!(fc.param_bytes, (512 * 7 * 7 * 4096 + 4096) as u64 * 4);
    }

    #[test]
    fn bottleneck_shapes() {
        let mut b = ConvNetBuilder::new("t", 1, 64, 56, 56);
        // First block of stage 1: projection, no stride.
        b.bottleneck("r1", 64, 256, 1);
        assert_eq!(b.shape(), (1, 256, 56, 56));
        // Downsampling block.
        b.bottleneck("r2", 128, 512, 2);
        assert_eq!(b.shape(), (1, 512, 28, 28));
        assert_eq!(b.layers[0].kernels, 13, "projection block");
        // Identity block: no projection.
        b.bottleneck("r3", 128, 512, 1);
        assert_eq!(b.layers[2].kernels, 10, "identity block");
    }

    #[test]
    fn bottleneck_projection_params() {
        let mut b = ConvNetBuilder::new("t", 1, 256, 56, 56);
        b.bottleneck("r", 64, 256, 1);
        // Identity block of stage 1: 256*64 + 9*64*64 + 64*256 convs.
        let conv = 256 * 64 + 9 * 64 * 64 + 64 * 256;
        let bn = 2 * (64 + 64 + 256);
        assert_eq!(b.layers[0].param_bytes, (conv + bn) as u64 * 4);
    }

    #[test]
    fn loss_panics_on_wrong_width() {
        // Builder debug-asserts logits width; exercised via classes match.
        let mut b = ConvNetBuilder::new("t", 1, 10, 1, 1);
        b.loss("l", 10);
        assert_eq!(b.layers.len(), 1);
    }
}
