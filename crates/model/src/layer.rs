//! Partitionable layer units.
//!
//! A [`Layer`] is the granularity at which the partitioner may cut the
//! model. For VGG-style plain convnets a unit is one conv/pool/linear
//! layer (with its activation fused in); for ResNet a unit is a whole
//! residual block, because a residual connection cannot be split across
//! two pipeline stages without extra cross-stage traffic.
//!
//! Every unit carries the analytic profile the paper's partitioner
//! needs: parameter bytes, output-activation bytes (what crosses a stage
//! boundary if the cut falls after this unit), bytes that must stay
//! resident for the backward pass, forward/backward FLOPs, and the
//! number of CUDA kernels the unit launches (fixed per-launch overhead
//! is a first-order effect for deep models like ResNet-152).

/// The kind of a partitionable layer unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A convolution (with fused bias/activation).
    Conv2d,
    /// A fully-connected (dense) layer.
    Linear,
    /// A spatial pooling layer (max or average).
    Pool,
    /// A whole residual bottleneck block (convs + batch-norms + skip).
    ResidualBlock,
    /// A whole Transformer encoder block (attention + FFN + norms).
    TransformerBlock,
    /// Batch normalization as a standalone unit.
    BatchNorm,
    /// Element-wise activation as a standalone unit.
    Activation,
    /// Reshape/flatten (no compute, no parameters).
    Flatten,
    /// Final classification loss (softmax + cross-entropy).
    Loss,
}

impl LayerKind {
    /// Compute-rate multiplier relative to the GPU's sustained FLOP/s.
    ///
    /// cuDNN executes large 3x3 convolutions with Winograd kernels
    /// (~2.25x fewer multiplies) at high utilization, so VGG-style convs
    /// sustain close to (nominal) peak FLOP/s — which is why VGG-19
    /// trains faster per nominal FLOP than ResNet-152 in the paper's
    /// Figure 3. Bottleneck blocks mix 1x1 convolutions (no Winograd)
    /// with small spatial extents; dense layers are GEMV-like at batch
    /// 32. These multipliers are calibrated jointly with
    /// `TITAN_V_SUSTAINED_FLOPS` against Figure 3's `Nm = 1` absolute
    /// throughputs (see EXPERIMENTS.md).
    pub fn flops_rate_multiplier(self) -> f64 {
        match self {
            LayerKind::Conv2d => 4.10,
            LayerKind::ResidualBlock => 2.70,
            // Large GEMMs at high utilization, but no Winograd.
            LayerKind::TransformerBlock => 1.80,
            LayerKind::Linear => 0.70,
            // Memory-bound units; rate is irrelevant (roofline picks the
            // bandwidth term) but keep a sane value.
            LayerKind::Pool
            | LayerKind::BatchNorm
            | LayerKind::Activation
            | LayerKind::Flatten
            | LayerKind::Loss => 0.50,
        }
    }

    /// True if the unit carries trainable parameters.
    pub fn has_params(self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d
                | LayerKind::Linear
                | LayerKind::ResidualBlock
                | LayerKind::TransformerBlock
                | LayerKind::BatchNorm
        )
    }
}

/// One partitionable unit of a model, with its analytic profile.
///
/// All byte and FLOP quantities are **per minibatch** (the builder bakes
/// the batch size in), matching how the paper's profiler measures layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable name (e.g. `"conv3_2"`, `"res4b17"`).
    pub name: String,
    /// Unit kind.
    pub kind: LayerKind,
    /// Trainable parameter bytes (f32).
    pub param_bytes: u64,
    /// Output activation bytes for one minibatch; this is what crosses a
    /// stage boundary (forward), and the same amount crosses back as a
    /// gradient (backward) if the partition cut falls after this unit.
    pub activation_bytes: u64,
    /// Bytes that must remain resident on the GPU from this unit's
    /// forward pass until its backward pass (internal activations,
    /// batch-norm saves, ReLU masks).
    pub stored_bytes: u64,
    /// Forward-pass FLOPs for one minibatch.
    pub fwd_flops: f64,
    /// Backward-pass FLOPs for one minibatch (typically ~2x forward:
    /// gradients w.r.t. both inputs and weights).
    pub bwd_flops: f64,
    /// Bytes streamed by memory-bound sub-kernels per forward pass
    /// (drives the roofline bandwidth term).
    pub membound_bytes: u64,
    /// Number of CUDA kernels launched per forward pass.
    pub kernels: u32,
}

impl Layer {
    /// Total FLOPs of one training step (forward + backward) of this unit.
    pub fn total_flops(&self) -> f64 {
        self.fwd_flops + self.bwd_flops
    }

    /// Number of trainable parameters (f32 count).
    pub fn param_count(&self) -> u64 {
        self.param_bytes / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(kind: LayerKind) -> Layer {
        Layer {
            name: "l".into(),
            kind,
            param_bytes: 400,
            activation_bytes: 1024,
            stored_bytes: 2048,
            fwd_flops: 1e6,
            bwd_flops: 2e6,
            membound_bytes: 512,
            kernels: 3,
        }
    }

    #[test]
    fn total_flops_sums_passes() {
        let l = dummy(LayerKind::Conv2d);
        assert_eq!(l.total_flops(), 3e6);
        assert_eq!(l.param_count(), 100);
    }

    #[test]
    fn conv_is_fastest_per_flop() {
        // The Winograd-calibrated ordering that explains the paper's
        // VGG-19 vs ResNet-152 throughput gap.
        assert!(
            LayerKind::Conv2d.flops_rate_multiplier()
                > LayerKind::ResidualBlock.flops_rate_multiplier()
        );
        assert!(
            LayerKind::ResidualBlock.flops_rate_multiplier()
                > LayerKind::Linear.flops_rate_multiplier()
        );
    }

    #[test]
    fn param_kinds() {
        assert!(LayerKind::Conv2d.has_params());
        assert!(LayerKind::ResidualBlock.has_params());
        assert!(!LayerKind::Pool.has_params());
        assert!(!LayerKind::Flatten.has_params());
    }
}
