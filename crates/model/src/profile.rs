//! Per-GPU compute-time model.
//!
//! Section 7: "we first profile the DNN model on each of the different
//! types of GPUs in a cluster, where we measure the computation time of
//! each layer". This module is the analytic stand-in for that profiling
//! run: the execution time of a layer on a GPU is the sum of
//!
//! 1. a compute term — layer FLOPs over the GPU's sustained rate scaled
//!    by the layer kind's efficiency multiplier (Winograd convs run
//!    "faster than peak" in nominal FLOPs),
//! 2. a bandwidth term — bytes streamed by the layer's memory-bound
//!    sub-kernels (batch-norm, ReLU, pooling) over effective bandwidth,
//! 3. a fixed per-kernel launch overhead (dominant for very deep models
//!    with small layers, e.g. ResNet-152's hundreds of kernels).

use crate::layer::Layer;
use hetpipe_cluster::gpu::{GpuSpec, PER_LAYER_OVERHEAD_SECS};

/// Fixed per-stage-task dispatch overhead, seconds.
///
/// Every forward or backward task a pipeline stage executes pays a
/// fixed framework cost (TF 1.12 session dispatch, queue runners,
/// weight-update serialization at the stage boundary). Calibrated
/// against the paper's Figure-3 scaling: the measured VVVV VGG-19
/// pipeline saturates near 2.5x its `Nm = 1` throughput instead of the
/// ideal 4x, implying roughly 15-40 ms of per-stage per-minibatch
/// overhead on top of pure kernel time.
pub const STAGE_TASK_OVERHEAD_SECS: f64 = 0.018;

/// Which pass a time query refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward propagation.
    Forward,
    /// Backward propagation (gradient w.r.t. inputs and weights).
    Backward,
}

/// A layer's compute profile on a specific GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerProfile {
    /// Forward execution time, seconds.
    pub fwd_secs: f64,
    /// Backward execution time, seconds.
    pub bwd_secs: f64,
}

impl LayerProfile {
    /// Profiles `layer` on `gpu`.
    pub fn of(layer: &Layer, gpu: &GpuSpec) -> LayerProfile {
        LayerProfile {
            fwd_secs: pass_time_secs(layer, gpu, Pass::Forward),
            bwd_secs: pass_time_secs(layer, gpu, Pass::Backward),
        }
    }

    /// Forward + backward time, seconds.
    pub fn total_secs(&self) -> f64 {
        self.fwd_secs + self.bwd_secs
    }
}

/// Execution time of one pass of `layer` on `gpu`, in seconds.
pub fn pass_time_secs(layer: &Layer, gpu: &GpuSpec, pass: Pass) -> f64 {
    let (flops, mem_mult, kernel_mult) = match pass {
        Pass::Forward => (layer.fwd_flops, 1.0, 1.0),
        // Backward re-streams activations twice (grad-in, grad-out) and
        // launches roughly twice the kernels (dgrad + wgrad).
        Pass::Backward => (layer.bwd_flops, 2.0, 2.0),
    };
    let rate = gpu.sustained_flops() * layer.kind.flops_rate_multiplier();
    let compute = flops / rate;
    let memory = layer.membound_bytes as f64 * mem_mult / gpu.effective_memory_bw();
    let overhead = layer.kernels as f64 * kernel_mult * PER_LAYER_OVERHEAD_SECS;
    compute + memory + overhead
}

/// Total forward+backward time of a contiguous range of layers.
pub fn range_time_secs(layers: &[Layer], gpu: &GpuSpec) -> f64 {
    layers
        .iter()
        .map(|l| LayerProfile::of(l, gpu).total_secs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{resnet152, vgg19};
    use hetpipe_cluster::GpuKind;

    #[test]
    fn backward_slower_than_forward() {
        let g = vgg19(32);
        let v = GpuKind::TitanV.spec();
        for l in g.layers() {
            let p = LayerProfile::of(l, &v);
            assert!(
                p.bwd_secs >= p.fwd_secs,
                "{}: bwd {} < fwd {}",
                l.name,
                p.bwd_secs,
                p.fwd_secs
            );
        }
    }

    #[test]
    fn faster_gpu_is_faster_everywhere() {
        let g = resnet152(32);
        let v = GpuKind::TitanV.spec();
        let q = GpuKind::QuadroP4000.spec();
        for l in g.layers() {
            assert!(
                LayerProfile::of(l, &v).total_secs() <= LayerProfile::of(l, &q).total_secs(),
                "{} slower on TITAN V",
                l.name
            );
        }
    }

    #[test]
    fn whole_model_step_times_in_calibrated_range() {
        // Figure 3 absolute throughputs at Nm = 1 imply whole-model
        // (fwd+bwd) step times on a TITAN V in the low hundreds of ms at
        // batch 32; the calibration should land in that band before
        // pipeline communication is added.
        let v = GpuKind::TitanV.spec();
        let t_vgg = range_time_secs(vgg19(32).layers(), &v);
        let t_rn = range_time_secs(resnet152(32).layers(), &v);
        assert!(t_vgg > 0.15 && t_vgg < 0.45, "VGG-19 step = {t_vgg:.3}s");
        assert!(t_rn > 0.20 && t_rn < 0.55, "ResNet-152 step = {t_rn:.3}s");
    }

    #[test]
    fn range_time_is_additive() {
        let g = vgg19(32);
        let v = GpuKind::TitanV.spec();
        let whole = range_time_secs(g.layers(), &v);
        let split = range_time_secs(&g.layers()[..5], &v) + range_time_secs(&g.layers()[5..], &v);
        assert!((whole - split).abs() < 1e-12);
    }
}
