//! Per-stage cost model.
//!
//! Section 7: *"we calculate the execution time of a partition to be the
//! sum of the computation time of all the layers in the partition and
//! the communication time needed for receiving the activations (in the
//! forward pass) and local gradients (in the backward pass)."*

use hetpipe_cluster::gpu::GpuSpec;
use hetpipe_cluster::network::LinkKind;
use hetpipe_model::memory::TrainingMemoryModel;
use hetpipe_model::profile;
use hetpipe_model::profile::{Pass, STAGE_TASK_OVERHEAD_SECS};
use hetpipe_model::ModelGraph;
use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule};
use std::ops::Range;

/// A partitioning problem instance: a model, an ordered list of stage
/// GPUs, the links feeding each stage, the pipeline concurrency, and
/// the pipeline schedule (whose per-stage memory profile shapes the
/// feasible cut set).
#[derive(Debug, Clone)]
pub struct PartitionProblem<'a> {
    /// The model to partition.
    pub graph: &'a ModelGraph,
    /// GPU of each pipeline stage, in stage order (`k` entries). For
    /// interleaved schedules these are *virtual* stages and the list
    /// repeats physical GPUs round-robin.
    pub gpus: Vec<GpuSpec>,
    /// Link crossed between stage `i` and stage `i + 1`
    /// (`k - 1` entries).
    pub links: Vec<LinkKind>,
    /// Number of minibatches concurrently in the pipeline (`Nm`);
    /// drives the per-stage memory constraint.
    pub nm: usize,
    /// The pipeline schedule the stages will run; determines per-stage
    /// in-flight activation counts and pinned weight versions.
    pub schedule: Schedule,
    /// Activation recomputation policy: shrinks the per-stage memory
    /// term (boundary inputs only) and adds one forward pass of
    /// compute per backward to every non-fused stage.
    pub recompute: RecomputePolicy,
}

impl<'a> PartitionProblem<'a> {
    /// Creates a problem instance for the paper's wave schedule.
    ///
    /// # Panics
    ///
    /// Panics if `links.len() + 1 != gpus.len()` or if `nm == 0`.
    pub fn new(graph: &'a ModelGraph, gpus: Vec<GpuSpec>, links: Vec<LinkKind>, nm: usize) -> Self {
        Self::with_schedule(graph, gpus, links, nm, Schedule::HetPipeWave)
    }

    /// Creates a problem instance for an arbitrary schedule.
    ///
    /// # Panics
    ///
    /// Panics if `links.len() + 1 != gpus.len()` or if `nm == 0`.
    pub fn with_schedule(
        graph: &'a ModelGraph,
        gpus: Vec<GpuSpec>,
        links: Vec<LinkKind>,
        nm: usize,
        schedule: Schedule,
    ) -> Self {
        assert_eq!(
            links.len() + 1,
            gpus.len(),
            "need exactly one link between each pair of adjacent stages"
        );
        assert!(nm >= 1, "at least one minibatch must be in flight");
        PartitionProblem {
            graph,
            gpus,
            links,
            nm,
            schedule,
            recompute: RecomputePolicy::None,
        }
    }

    /// Sets the activation-recomputation policy (builder style).
    pub fn with_recompute(mut self, recompute: RecomputePolicy) -> Self {
        self.recompute = recompute;
        self
    }

    /// Number of pipeline stages `k`.
    pub fn stages(&self) -> usize {
        self.gpus.len()
    }
}

/// Evaluates stage times and memory feasibility for a problem.
///
/// Every per-range query is O(1): layer times are prefix-summed per
/// stage GPU, layer bytes are prefix-summed on the graph itself, and
/// the schedule's per-stage terms (in-flight window, pinned versions,
/// checkpoint decision, memory budgets) are resolved **once** at
/// construction — the partition DP issues O(k·L²) probes per solve,
/// so per-probe dynamic dispatch into the schedule dominated plan
/// time as thoroughly as per-probe re-summation did.
#[derive(Debug, Clone)]
pub struct StageCostModel<'a> {
    problem: &'a PartitionProblem<'a>,
    /// Prefix sums of per-layer fwd+bwd seconds, one row per stage GPU.
    prefix_secs: Vec<Vec<f64>>,
    /// Prefix sums of per-layer forward-only seconds (the recompute
    /// term re-runs exactly the forward), one row per stage GPU.
    prefix_fwd_secs: Vec<Vec<f64>>,
    /// Per stage: incoming-activation transfer seconds by range start
    /// (`in_comm[stage][s]` = receive the forward input cut at `s`;
    /// 0 for stage 0, whose loader overlaps with compute).
    in_comm: Vec<Vec<f64>>,
    /// Per stage: incoming-gradient transfer seconds by range end
    /// (`out_comm[stage][i]` = receive the gradient of the boundary
    /// before layer `i`; 0 for the last stage). Index 0 is unused.
    out_comm: Vec<Vec<f64>>,
    /// Per stage: the schedule's memory terms, hoisted.
    terms: Vec<hetpipe_model::StageMemoryTerms>,
    /// Per stage: the equal-split byte budget ([`Self::fits`]).
    budget_equal: Vec<u64>,
    /// Per stage: the whole-GPU byte budget ([`Self::fits_alone`]).
    budget_alone: Vec<u64>,
}

impl<'a> StageCostModel<'a> {
    /// Precomputes prefix sums of layer times for every stage GPU and
    /// the per-stage schedule terms and budgets.
    pub fn new(problem: &'a PartitionProblem<'a>) -> Self {
        let layers = problem.graph.layers();
        let mut prefix_secs = Vec::with_capacity(problem.gpus.len());
        let mut prefix_fwd_secs = Vec::with_capacity(problem.gpus.len());
        for gpu in &problem.gpus {
            let mut acc = 0.0;
            let mut acc_fwd = 0.0;
            let mut row = Vec::with_capacity(layers.len() + 1);
            let mut row_fwd = Vec::with_capacity(layers.len() + 1);
            row.push(0.0);
            row_fwd.push(0.0);
            for l in layers {
                let p = profile::LayerProfile::of(l, gpu);
                acc += p.total_secs();
                acc_fwd += profile::pass_time_secs(l, gpu, Pass::Forward);
                row.push(acc);
                row_fwd.push(acc_fwd);
            }
            prefix_secs.push(row);
            prefix_fwd_secs.push(row_fwd);
        }
        let k = problem.gpus.len();
        let n = layers.len();
        let g = problem.graph;
        // Per-stage comm tables: transfer times depend only on the
        // boundary a range starts or ends at, so the DP's per-probe
        // comm charge is two lookups instead of two bandwidth
        // computations.
        let in_comm: Vec<Vec<f64>> = (0..k)
            .map(|stage| {
                (0..=n)
                    .map(|s| {
                        if stage > 0 && s < n {
                            problem.links[stage - 1].transfer_secs(g.input_bytes_of(s))
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let out_comm: Vec<Vec<f64>> = (0..k)
            .map(|stage| {
                (0..=n)
                    .map(|i| {
                        if stage + 1 < k && i > 0 {
                            problem.links[stage].transfer_secs(g.boundary_bytes(i - 1))
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let terms: Vec<_> = (0..k)
            .map(|s| {
                hetpipe_model::StageMemoryTerms::new(
                    s,
                    k,
                    problem.nm,
                    &problem.schedule,
                    problem.recompute,
                )
            })
            .collect();
        let budget_equal = problem
            .gpus
            .iter()
            .map(|gpu| TrainingMemoryModel::equal_split_budget(gpu, &problem.schedule))
            .collect();
        let budget_alone = problem.gpus.iter().map(|gpu| gpu.memory_bytes).collect();
        StageCostModel {
            problem,
            prefix_secs,
            prefix_fwd_secs,
            in_comm,
            out_comm,
            terms,
            budget_equal,
            budget_alone,
        }
    }

    /// Pure compute time of layers `range` on stage `stage`'s GPU.
    pub fn compute_secs(&self, stage: usize, range: Range<usize>) -> f64 {
        self.prefix_secs[stage][range.end] - self.prefix_secs[stage][range.start]
    }

    /// Forward-only compute time of layers `range` on stage `stage`'s
    /// GPU — what one activation recomputation costs.
    pub fn forward_secs(&self, stage: usize, range: Range<usize>) -> f64 {
        self.prefix_fwd_secs[stage][range.end] - self.prefix_fwd_secs[stage][range.start]
    }

    /// Communication time charged to stage `stage` for the layer range:
    /// receiving forward activations from the previous stage and
    /// backward gradients from the next stage.
    ///
    /// `range.end` is exclusive; `last_stage` receives no gradient from
    /// the right, and stage 0 receives its input from the data loader
    /// (not charged — the loader overlaps with compute in practice).
    pub fn comm_secs(&self, stage: usize, range: Range<usize>) -> f64 {
        // Forward activations arriving from the left neighbour, plus
        // gradients w.r.t. our outputs arriving from the right (same
        // size as the boundary activations) — precomputed per-stage
        // boundary tables, since the DP probes every (start, end) pair.
        self.in_comm[stage][range.start] + self.out_comm[stage][range.end]
    }

    /// Full execution time of a stage: compute, plus incoming
    /// communication, plus the fixed dispatch overhead of one forward
    /// and one backward task (so plans match what the executor
    /// simulates). Stages that checkpoint
    /// ([`PipelineSchedule::recomputes_at`]) additionally pay one
    /// forward pass (and one task dispatch) per minibatch to
    /// rematerialize activations; stages whose in-flight window is 1
    /// (e.g. the last stage of the 1F1B-family schedules) skip the
    /// re-run — there is no stash to reclaim, so the executor never
    /// schedules one and the plan must not charge for it.
    pub fn stage_secs(&self, stage: usize, range: Range<usize>) -> f64 {
        let mut secs = self.compute_secs(stage, range.clone())
            + self.comm_secs(stage, range.clone())
            + 2.0 * STAGE_TASK_OVERHEAD_SECS;
        if self.terms[stage].recomputes() {
            secs += self.forward_secs(stage, range) + STAGE_TASK_OVERHEAD_SECS;
        }
        secs
    }

    /// Reference implementation of [`Self::stage_secs`] that re-sums
    /// the layer slice on every call instead of using the prefix-sum
    /// range queries. The parity oracle for `tests/planner_parity.rs`
    /// and the per-probe cost `planner_bench` times as its baseline —
    /// not for production use.
    pub fn stage_secs_naive(&self, stage: usize, range: Range<usize>) -> f64 {
        let layers = &self.problem.graph.layers()[range.clone()];
        let gpu = &self.problem.gpus[stage];
        let mut secs = profile::range_time_secs(layers, gpu)
            + self.comm_secs(stage, range.clone())
            + 2.0 * STAGE_TASK_OVERHEAD_SECS;
        if self.problem.schedule.recomputes_at(
            stage,
            self.problem.stages(),
            self.problem.nm,
            self.problem.recompute,
        ) {
            let fwd: f64 = layers
                .iter()
                .map(|l| profile::pass_time_secs(l, gpu, Pass::Forward))
                .sum();
            secs += fwd + STAGE_TASK_OVERHEAD_SECS;
        }
        secs
    }

    /// Whether the layer range fits stage `stage`'s GPU memory at the
    /// problem's `Nm` under the problem's schedule (equal-split budget
    /// for co-located interleaved chunks — the conservative per-stage
    /// certification).
    pub fn fits(&self, stage: usize, range: Range<usize>) -> bool {
        self.terms[stage].stage_bytes(self.problem.graph, range) <= self.budget_equal[stage]
    }

    /// The relaxed per-stage check: the range fits the stage's GPU
    /// with the whole budget to itself. Necessary for any plan; the
    /// solver pairs it with the exact joint per-GPU check
    /// ([`TrainingMemoryModel::plan_fits_per_gpu`]) so uneven chunk
    /// shares that fit *together* are admitted.
    pub fn fits_alone(&self, stage: usize, range: Range<usize>) -> bool {
        self.terms[stage].stage_bytes(self.problem.graph, range) <= self.budget_alone[stage]
    }

    /// The exact joint per-GPU check over a complete plan's ranges.
    pub fn plan_fits_per_gpu(&self, ranges: &[Range<usize>]) -> bool {
        let colocated = self.problem.schedule.colocated_stages();
        let physical = self.problem.stages() / colocated;
        TrainingMemoryModel::plan_fits_per_gpu(
            self.problem.graph,
            ranges,
            &self.problem.gpus[..physical],
            self.problem.nm,
            &self.problem.schedule,
            self.problem.recompute,
        )
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &PartitionProblem<'a> {
        self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;
    use hetpipe_model::vgg19;

    fn problem(graph: &ModelGraph) -> PartitionProblem<'_> {
        PartitionProblem::new(
            graph,
            vec![GpuKind::TitanV.spec(); 4],
            vec![LinkKind::Pcie; 3],
            1,
        )
    }

    #[test]
    fn compute_prefix_sums_match_direct() {
        let g = vgg19(32);
        let p = problem(&g);
        let m = StageCostModel::new(&p);
        let direct = profile::range_time_secs(&g.layers()[3..9], &p.gpus[0]);
        assert!((m.compute_secs(0, 3..9) - direct).abs() < 1e-12);
    }

    #[test]
    fn edge_stages_have_less_comm() {
        let g = vgg19(32);
        let p = problem(&g);
        let m = StageCostModel::new(&p);
        let quarter = g.len() / 4;
        // Stage 0 only receives gradients from the right; a middle stage
        // receives from both sides.
        let c0 = m.comm_secs(0, 0..quarter);
        let c1 = m.comm_secs(1, quarter..2 * quarter);
        assert!(c0 < c1);
        // The last stage only receives activations from the left.
        let c3 = m.comm_secs(3, 3 * quarter..g.len());
        assert!(c3 < c1);
    }

    #[test]
    fn stage_secs_is_compute_plus_comm_plus_dispatch() {
        let g = vgg19(32);
        let p = problem(&g);
        let m = StageCostModel::new(&p);
        let r = 5..12;
        let expected = m.compute_secs(1, r.clone())
            + m.comm_secs(1, r.clone())
            + 2.0 * STAGE_TASK_OVERHEAD_SECS;
        assert!((m.stage_secs(1, r) - expected).abs() < 1e-15);
    }

    #[test]
    fn recompute_charges_one_forward_per_minibatch() {
        let g = vgg19(32);
        let deep = |graph| {
            PartitionProblem::new(
                graph,
                vec![GpuKind::TitanV.spec(); 4],
                vec![LinkKind::Pcie; 3],
                4,
            )
        };
        let plain = deep(&g);
        let ckpt = deep(&g).with_recompute(RecomputePolicy::BoundaryOnly);
        let m_plain = StageCostModel::new(&plain);
        let m_ckpt = StageCostModel::new(&ckpt);
        let r = 5..12;
        // A checkpointing stage pays the forward re-run plus one task
        // dispatch on top of the plain stage time.
        let expected = m_plain.stage_secs(1, r.clone())
            + m_plain.forward_secs(1, r.clone())
            + STAGE_TASK_OVERHEAD_SECS;
        assert!((m_ckpt.stage_secs(1, r.clone()) - expected).abs() < 1e-15);
        // The wave schedule's fused last stage never recomputes.
        let last = 3;
        let tail = g.len() - 5..g.len();
        assert!(
            (m_ckpt.stage_secs(last, tail.clone()) - m_plain.stage_secs(last, tail.clone())).abs()
                < 1e-15
        );
        // Nm = 1: every window is 1, so no stage checkpoints and the
        // recompute policy must not change any stage time (the skip
        // that recovers Megatron's free throughput).
        let plain1 = problem(&g);
        let ckpt1 = problem(&g).with_recompute(RecomputePolicy::BoundaryOnly);
        let m_plain1 = StageCostModel::new(&plain1);
        let m_ckpt1 = StageCostModel::new(&ckpt1);
        for stage in 0..4 {
            assert!(
                (m_ckpt1.stage_secs(stage, r.clone()) - m_plain1.stage_secs(stage, r.clone()))
                    .abs()
                    < 1e-15,
                "window-1 stage {stage} must skip the recompute charge"
            );
        }
        // 1F1B's last stage has window 1 even at Nm = 4: skipped too.
        let ofob = PartitionProblem::with_schedule(
            &g,
            vec![GpuKind::TitanV.spec(); 4],
            vec![LinkKind::Pcie; 3],
            4,
            Schedule::OneFOneB,
        );
        let ofob_ckpt = ofob.clone().with_recompute(RecomputePolicy::BoundaryOnly);
        let m_ofob = StageCostModel::new(&ofob);
        let m_ofob_ckpt = StageCostModel::new(&ofob_ckpt);
        assert!(
            (m_ofob_ckpt.stage_secs(3, tail.clone()) - m_ofob.stage_secs(3, tail)).abs() < 1e-15,
            "1F1B's window-1 last stage must skip the recompute charge"
        );
        assert!(m_ofob_ckpt.stage_secs(0, r.clone()) > m_ofob.stage_secs(0, r));
    }

    #[test]
    fn hoisted_fits_matches_memory_model() {
        // The hoisted per-stage terms must answer exactly like the
        // memory model's unhoisted entry points, for every schedule,
        // recompute policy, stage, and range probed.
        use hetpipe_model::TrainingMemoryModel;
        let g = vgg19(32);
        let n = g.len();
        for schedule in Schedule::ALL {
            let k = {
                use hetpipe_schedule::PipelineSchedule;
                schedule.virtual_stages(4)
            };
            for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                let p = PartitionProblem::with_schedule(
                    &g,
                    (0..k).map(|_| GpuKind::Rtx2060.spec()).collect(),
                    vec![LinkKind::Pcie; k - 1],
                    3,
                    schedule,
                )
                .with_recompute(recompute);
                let m = StageCostModel::new(&p);
                for stage in 0..k {
                    for (s, e) in [(0, n), (0, 2), (3, 9), (n / 2, n), (n - 1, n)] {
                        assert_eq!(
                            m.fits(stage, s..e),
                            TrainingMemoryModel::stage_fits_with(
                                &g,
                                s..e,
                                stage,
                                k,
                                3,
                                &p.gpus[stage],
                                &schedule,
                                recompute
                            ),
                            "{schedule} {recompute} fits stage {stage} {s}..{e}"
                        );
                        assert_eq!(
                            m.fits_alone(stage, s..e),
                            TrainingMemoryModel::stage_fits_alone(
                                &g,
                                s..e,
                                stage,
                                k,
                                3,
                                &p.gpus[stage],
                                &schedule,
                                recompute
                            ),
                            "{schedule} {recompute} fits_alone stage {stage} {s}..{e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one link between")]
    fn mismatched_links_rejected() {
        let g = vgg19(32);
        let _ = PartitionProblem::new(&g, vec![GpuKind::TitanV.spec(); 4], vec![], 1);
    }
}
