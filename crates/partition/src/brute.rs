//! Exhaustive reference solver.
//!
//! Enumerates every way of cutting `L` layers into `k` non-empty
//! contiguous stages — `C(L-1, k-1)` candidates — and returns the best
//! feasible plan. Exponentially slow; exists purely to certify the DP
//! solver's optimality on small instances (unit and property tests).

use crate::cost::{PartitionProblem, StageCostModel};
use crate::solver::{PartitionError, PartitionPlan};
use std::ops::Range;

/// Solves by exhaustive enumeration. Semantics identical to
/// [`crate::PartitionSolver::solve`].
pub fn solve_brute(problem: &PartitionProblem<'_>) -> Result<PartitionPlan, PartitionError> {
    let k = problem.stages();
    let n = problem.graph.len();
    if k > n {
        return Err(PartitionError::TooManyStages {
            stages: k,
            layers: n,
        });
    }
    let model = StageCostModel::new(problem);

    let mut best: Option<(f64, Vec<Range<usize>>)> = None;
    let mut cuts = vec![0usize; k - 1];
    enumerate_cuts(n, k, 1, 0, &mut cuts, &mut |cuts| {
        let mut ranges = Vec::with_capacity(k);
        let mut start = 0;
        for &c in cuts.iter() {
            ranges.push(start..c);
            start = c;
        }
        ranges.push(start..n);

        let mut bottleneck: f64 = 0.0;
        for (s, r) in ranges.iter().enumerate() {
            if !model.fits(s, r.clone()) {
                return;
            }
            bottleneck = bottleneck.max(model.stage_secs(s, r.clone()));
        }
        if best.as_ref().is_none_or(|(b, _)| bottleneck < *b) {
            best = Some((bottleneck, ranges));
        }
    });

    match best {
        Some((bottleneck_secs, ranges)) => {
            let stage_secs: Vec<f64> = ranges
                .iter()
                .enumerate()
                .map(|(s, r)| model.stage_secs(s, r.clone()))
                .collect();
            Ok(PartitionPlan {
                ranges,
                stage_secs,
                bottleneck_secs,
            })
        }
        None => Err(PartitionError::OutOfMemory),
    }
}

/// Recursively enumerates increasing cut positions
/// `1 <= c_0 < c_1 < … < c_{k-2} <= n - 1`.
fn enumerate_cuts(
    n: usize,
    k: usize,
    min: usize,
    idx: usize,
    cuts: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if idx == k - 1 {
        visit(cuts);
        return;
    }
    // Leave room for the remaining cuts and a non-empty final stage.
    let remaining = (k - 1) - idx - 1;
    for c in min..=(n - 1 - remaining) {
        cuts[idx] = c;
        enumerate_cuts(n, k, c + 1, idx + 1, cuts, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::PartitionSolver;
    use hetpipe_cluster::{GpuKind, LinkKind};
    use hetpipe_model::mlp;

    #[test]
    fn brute_matches_dp_on_mlp() {
        let g = mlp(32, &[512, 400, 300, 200, 100, 50, 10]);
        for k in 1..=4 {
            let p = PartitionProblem::new(
                &g,
                (0..k)
                    .map(|i| {
                        if i % 2 == 0 {
                            GpuKind::TitanV.spec()
                        } else {
                            GpuKind::QuadroP4000.spec()
                        }
                    })
                    .collect(),
                vec![LinkKind::Pcie; k - 1],
                1,
            );
            let dp = PartitionSolver::solve(&p).unwrap();
            let brute = solve_brute(&p).unwrap();
            assert!(
                (dp.bottleneck_secs - brute.bottleneck_secs).abs() < 1e-12,
                "k={k}: dp {} vs brute {}",
                dp.bottleneck_secs,
                brute.bottleneck_secs
            );
        }
    }

    #[test]
    fn brute_rejects_like_dp() {
        let g = mlp(32, &[64, 32, 10]);
        let p = PartitionProblem::new(
            &g,
            vec![GpuKind::TitanV.spec(); 4],
            vec![LinkKind::Pcie; 3],
            1,
        );
        assert!(matches!(
            solve_brute(&p),
            Err(PartitionError::TooManyStages { .. })
        ));
    }
}
