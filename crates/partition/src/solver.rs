//! The min–max partition solvers.
//!
//! The exact solver is an interval dynamic program: `best[j][i]` is the
//! minimal achievable bottleneck when the first `i` layers are split
//! into `j + 1` stages, i.e. stage `j` ends right before layer `i`.
//! Position-dependent memory constraints (earlier stages hold more
//! in-flight state) are applied per candidate interval.
//!
//! Plan time is the system's hot path (the order search and the `Nm`
//! sweeps solve this DP hundreds of times per build), so the DP is
//! O(k·L²) with **O(1) probes**: stage times and memory charges are
//! prefix-sum range queries, and a frontier prune drops range starts
//! whose memory budget is already exceeded (infeasibility is monotone
//! in range width). [`PartitionSolver::solve_reference`] preserves the
//! naive re-summing DP as the parity oracle and timing baseline; the
//! largest feasible `Nm` is binary-searched over the monotone
//! feasibility gate ([`max_feasible_nm_linear`] keeps the linear
//! rescan for the same purpose). A faster binary-search/greedy variant
//! is provided as a comparison point for larger synthetic instances.

use crate::cost::{PartitionProblem, StageCostModel};
use std::fmt;
use std::ops::Range;

/// Why a problem instance cannot be partitioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// More stages than layers (empty stages are not allowed).
    TooManyStages {
        /// Requested stage count.
        stages: usize,
        /// Available layer units.
        layers: usize,
    },
    /// No cut assignment satisfies every stage's memory budget.
    OutOfMemory,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::TooManyStages { stages, layers } => write!(
                f,
                "cannot split {layers} layer units into {stages} non-empty stages"
            ),
            PartitionError::OutOfMemory => {
                write!(f, "no contiguous partition satisfies the memory budgets")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A feasible partition of the model onto the pipeline stages.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// Layer range of each stage, in stage order.
    pub ranges: Vec<Range<usize>>,
    /// Execution time of each stage, seconds.
    pub stage_secs: Vec<f64>,
    /// The plan's bottleneck (maximum stage time), seconds.
    pub bottleneck_secs: f64,
}

impl PartitionPlan {
    fn from_ranges(model: &StageCostModel<'_>, ranges: Vec<Range<usize>>) -> PartitionPlan {
        let stage_secs: Vec<f64> = ranges
            .iter()
            .enumerate()
            .map(|(s, r)| model.stage_secs(s, r.clone()))
            .collect();
        let bottleneck_secs = stage_secs.iter().cloned().fold(0.0, f64::max);
        PartitionPlan {
            ranges,
            stage_secs,
            bottleneck_secs,
        }
    }

    /// The pipeline's steady-state throughput upper bound in
    /// minibatches per second (1 / bottleneck).
    pub fn minibatches_per_sec(&self) -> f64 {
        1.0 / self.bottleneck_secs
    }

    /// Asserts structural invariants: ranges are non-empty, contiguous,
    /// and cover `0..layers`.
    pub fn is_valid_cover(&self, layers: usize) -> bool {
        let mut next = 0;
        for r in &self.ranges {
            if r.start != next || r.end <= r.start {
                return false;
            }
            next = r.end;
        }
        next == layers
    }
}

/// Which memory certification the DP's per-interval probe uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemMode {
    /// The per-stage check (equal-split budget for co-located chunks).
    PerStage,
    /// The relaxed whole-GPU check; the reconstructed plan must then
    /// pass the exact joint per-GPU check.
    Alone,
}

/// The exact interval-DP solver.
#[derive(Debug, Clone, Copy)]
pub struct PartitionSolver;

impl PartitionSolver {
    /// Solves the min–max partitioning problem exactly.
    ///
    /// Returns the optimal plan, or an error when the instance is
    /// structurally or memory-infeasible.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetpipe_cluster::{GpuKind, LinkKind};
    /// use hetpipe_partition::{PartitionProblem, PartitionSolver};
    ///
    /// let g = hetpipe_model::vgg19(32);
    /// let p = PartitionProblem::new(
    ///     &g,
    ///     vec![GpuKind::TitanV.spec(); 4],
    ///     vec![LinkKind::Pcie; 3],
    ///     1,
    /// );
    /// let plan = PartitionSolver::solve(&p).unwrap();
    /// assert!(plan.is_valid_cover(g.len()));
    /// assert_eq!(plan.ranges.len(), 4);
    /// ```
    pub fn solve(problem: &PartitionProblem<'_>) -> Result<PartitionPlan, PartitionError> {
        use hetpipe_schedule::PipelineSchedule;
        if problem.schedule.colocated_stages() > 1 {
            // Interleaved chunks share a physical GPU. The per-stage DP
            // cannot see a GPU's whole chunk set, so run it with the
            // relaxed fits-alone probe and certify the reconstructed
            // plan with the exact joint per-GPU check — this admits
            // uneven chunk shares (a big chunk paired with a small one)
            // that the equal-split budget rejects. When the relaxed
            // optimum happens not to fit jointly, fall back to the
            // conservative equal-split certification.
            if let Ok(plan) = Self::solve_with_mode(problem, MemMode::Alone) {
                let model = StageCostModel::new(problem);
                if model.plan_fits_per_gpu(&plan.ranges) {
                    return Ok(plan);
                }
            }
        }
        Self::solve_with_mode(problem, MemMode::PerStage)
    }

    /// [`PartitionSolver::solve`] warm-started from an incumbent plan
    /// (e.g. the plan currently executing, when the runtime re-plans
    /// with observed costs): the incumbent's bottleneck under the *new*
    /// cost model is a sound upper bound on the optimum, so the DP
    /// skips every `(stage, range)` cell whose stage time already
    /// exceeds it. Answer-preserving, not heuristic — the optimum's
    /// whole DP path has values at or below the bound, and candidates
    /// above the bound can never be an argmin at a retained cell, so
    /// the reconstructed plan (tie-breaks included) is identical to a
    /// cold [`PartitionSolver::solve`] (`solve_warm_matches_cold`
    /// pins this on derated-GPU replan instances).
    ///
    /// The bound only applies when the incumbent is a valid cover that
    /// is still memory-feasible under `problem`; otherwise (or for
    /// colocated interleaved schedules, whose joint per-GPU
    /// certification admits no per-cell bound) this degrades to the
    /// cold solve.
    pub fn solve_warm(
        problem: &PartitionProblem<'_>,
        incumbent: Option<&[Range<usize>]>,
    ) -> Result<PartitionPlan, PartitionError> {
        use hetpipe_schedule::PipelineSchedule;
        if problem.schedule.colocated_stages() > 1 {
            return Self::solve(problem);
        }
        Self::solve_bounded(problem, MemMode::PerStage, incumbent)
    }

    /// Probes whether an incumbent would actually warm-start
    /// [`PartitionSolver::solve_warm`] on `problem`: returns the
    /// incumbent's bottleneck re-costed under the new cost model (the
    /// bound the DP would prune with), or `None` when no sound bound
    /// exists — incumbent absent, not a valid `k`-stage cover,
    /// memory-infeasible under the new costs, or a colocated
    /// interleaved schedule (where `solve_warm` degrades to the cold
    /// solve). Callers that report provenance (the plan service's
    /// `WarmMiss` vs `Cold`) use this to claim a warm start only when
    /// pruning genuinely applied.
    pub fn incumbent_bound_secs(
        problem: &PartitionProblem<'_>,
        incumbent: &[Range<usize>],
    ) -> Option<f64> {
        use hetpipe_schedule::PipelineSchedule;
        if problem.schedule.colocated_stages() > 1 {
            return None;
        }
        let model = StageCostModel::new(problem);
        let bound = Self::incumbent_bound(
            &model,
            problem.graph.len(),
            problem.stages(),
            Some(incumbent),
        );
        bound.is_finite().then_some(bound)
    }

    /// The warm-start bound: the incumbent's bottleneck re-costed
    /// under `model`, or ∞ when the incumbent is not a valid,
    /// memory-feasible cover of the new problem (no sound bound
    /// exists then).
    fn incumbent_bound(
        model: &StageCostModel<'_>,
        n: usize,
        k: usize,
        incumbent: Option<&[Range<usize>]>,
    ) -> f64 {
        let Some(ranges) = incumbent else {
            return f64::INFINITY;
        };
        let mut next = 0;
        let is_cover = ranges.len() == k
            && ranges.iter().all(|r| {
                let ok = r.start == next && r.end > r.start;
                next = r.end;
                ok
            })
            && next == n;
        if !is_cover {
            return f64::INFINITY;
        }
        if !ranges
            .iter()
            .enumerate()
            .all(|(s, r)| model.fits(s, r.clone()))
        {
            return f64::INFINITY;
        }
        ranges
            .iter()
            .enumerate()
            .map(|(s, r)| model.stage_secs(s, r.clone()))
            .fold(0.0, f64::max)
    }

    fn solve_with_mode(
        problem: &PartitionProblem<'_>,
        mode: MemMode,
    ) -> Result<PartitionPlan, PartitionError> {
        Self::solve_bounded(problem, mode, None)
    }

    fn solve_bounded(
        problem: &PartitionProblem<'_>,
        mode: MemMode,
        incumbent: Option<&[Range<usize>]>,
    ) -> Result<PartitionPlan, PartitionError> {
        let k = problem.stages();
        let n = problem.graph.len();
        if k > n {
            return Err(PartitionError::TooManyStages {
                stages: k,
                layers: n,
            });
        }
        let model = StageCostModel::new(problem);
        let bound = Self::incumbent_bound(&model, n, k, incumbent);
        let fits = |stage: usize, range: std::ops::Range<usize>| match mode {
            MemMode::PerStage => model.fits(stage, range),
            MemMode::Alone => model.fits_alone(stage, range),
        };

        const INF: f64 = f64::INFINITY;
        // best[j][i]: minimal bottleneck splitting layers 0..i into the
        // first j+1 stages (stage j ends at i). choice[j][i]: the start
        // of stage j in that optimum.
        let mut best = vec![vec![INF; n + 1]; k];
        let mut choice = vec![vec![usize::MAX; n + 1]; k];

        for i in 1..=n {
            // Stage 0 covers 0..i. Memory infeasibility is monotone in
            // the range end for a fixed start (params and stored bytes
            // only grow; the input buffer and per-stage multipliers are
            // fixed), so the first infeasible prefix ends the sweep.
            if !fits(0, 0..i) {
                break;
            }
            let t = model.stage_secs(0, 0..i);
            // Cells above the warm-start bound can never sit on the
            // optimal path (the incumbent proves optimum ≤ bound), so
            // they are never materialized. Memory monotonicity still
            // drives the break; time is not assumed monotone, so the
            // sweep continues past a too-slow prefix.
            if t <= bound {
                best[0][i] = t;
                choice[0][i] = 0;
            }
        }
        for j in 1..k {
            // Start-major frontier walk: stage j covering s..i for
            // every s in [j, n) with a feasible (j−1)-stage prefix,
            // extending i until the memory budget trips — the same
            // monotonicity as above makes the break exact, so
            // infeasible (s, i) pairs beyond the frontier are never
            // probed at all. Visiting s ascending with strictly-less
            // updates keeps the chosen cuts identical to the
            // end-major loop this replaces.
            for s in j..n {
                let lo = best[j - 1][s];
                if lo.is_infinite() {
                    continue;
                }
                for i in (s + 1)..=n {
                    if !fits(j, s..i) {
                        break;
                    }
                    let b = lo.max(model.stage_secs(j, s..i));
                    if b <= bound && b < best[j][i] {
                        best[j][i] = b;
                        choice[j][i] = s;
                    }
                }
            }
        }

        if best[k - 1][n].is_infinite() {
            return Err(PartitionError::OutOfMemory);
        }

        // Reconstruct ranges right-to-left.
        let mut ranges = vec![0..0; k];
        let mut end = n;
        for j in (0..k).rev() {
            let start = choice[j][end];
            ranges[j] = start..end;
            end = start;
        }
        Ok(PartitionPlan::from_ranges(&model, ranges))
    }

    /// Reference DP solver: semantically identical to [`Self::solve`],
    /// but every per-interval probe re-sums the layer slice (naive
    /// time and memory summation, no frontier prune) — the
    /// pre-optimization planner. Kept as the parity oracle for
    /// `tests/planner_parity.rs` and the timing baseline
    /// `planner_bench` records; not for production use.
    pub fn solve_reference(
        problem: &PartitionProblem<'_>,
    ) -> Result<PartitionPlan, PartitionError> {
        use hetpipe_schedule::PipelineSchedule;
        if problem.schedule.colocated_stages() > 1 {
            if let Ok(plan) = Self::solve_reference_with_mode(problem, MemMode::Alone) {
                let model = StageCostModel::new(problem);
                if model.plan_fits_per_gpu(&plan.ranges) {
                    return Ok(plan);
                }
            }
        }
        Self::solve_reference_with_mode(problem, MemMode::PerStage)
    }

    fn solve_reference_with_mode(
        problem: &PartitionProblem<'_>,
        mode: MemMode,
    ) -> Result<PartitionPlan, PartitionError> {
        use hetpipe_model::memory::TrainingMemoryModel;
        let k = problem.stages();
        let n = problem.graph.len();
        if k > n {
            return Err(PartitionError::TooManyStages {
                stages: k,
                layers: n,
            });
        }
        let model = StageCostModel::new(problem);
        let budget = |stage: usize| match mode {
            MemMode::PerStage => {
                TrainingMemoryModel::equal_split_budget(&problem.gpus[stage], &problem.schedule)
            }
            MemMode::Alone => problem.gpus[stage].memory_bytes,
        };
        let fits = |stage: usize, range: Range<usize>| {
            TrainingMemoryModel::stage_bytes_with_naive(
                problem.graph,
                range,
                stage,
                k,
                problem.nm,
                &problem.schedule,
                problem.recompute,
            ) <= budget(stage)
        };

        const INF: f64 = f64::INFINITY;
        let mut best = vec![vec![INF; n + 1]; k];
        let mut choice = vec![vec![usize::MAX; n + 1]; k];
        for i in 1..=n {
            if fits(0, 0..i) {
                best[0][i] = model.stage_secs_naive(0, 0..i);
                choice[0][i] = 0;
            }
        }
        for j in 1..k {
            for i in (j + 1)..=n {
                for s in j..i {
                    if best[j - 1][s].is_infinite() || !fits(j, s..i) {
                        continue;
                    }
                    let b = best[j - 1][s].max(model.stage_secs_naive(j, s..i));
                    if b < best[j][i] {
                        best[j][i] = b;
                        choice[j][i] = s;
                    }
                }
            }
        }
        if best[k - 1][n].is_infinite() {
            return Err(PartitionError::OutOfMemory);
        }
        let mut ranges = vec![0..0; k];
        let mut end = n;
        for j in (0..k).rev() {
            let start = choice[j][end];
            ranges[j] = start..end;
            end = start;
        }
        Ok(PartitionPlan::from_ranges(&model, ranges))
    }

    /// Binary-search + greedy solver (comparison point).
    ///
    /// Binary-searches the bottleneck value and greedily packs layers
    /// left-to-right; exact for monotone cost structures without memory
    /// constraints, heuristic (but fast) otherwise. Returns `None` if
    /// the greedy sweep finds no feasible packing.
    pub fn solve_greedy(problem: &PartitionProblem<'_>) -> Option<PartitionPlan> {
        let k = problem.stages();
        let n = problem.graph.len();
        if k > n {
            return None;
        }
        let model = StageCostModel::new(problem);

        // Upper bound: everything on the slowest single stage.
        let mut hi = (0..k)
            .map(|s| model.stage_secs(s, 0..n))
            .fold(0.0, f64::max);
        let mut lo = 0.0;
        let mut found: Option<Vec<Range<usize>>> = None;
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if let Some(ranges) = greedy_pack(&model, k, n, mid) {
                found = Some(ranges);
                hi = mid;
            } else {
                lo = mid;
            }
        }
        found.map(|r| PartitionPlan::from_ranges(&model, r))
    }
}

/// Greedily packs layers into stages keeping each stage under `cap`
/// seconds and within memory; each stage takes the longest feasible
/// prefix that still leaves at least one layer per remaining stage.
fn greedy_pack(
    model: &StageCostModel<'_>,
    k: usize,
    n: usize,
    cap: f64,
) -> Option<Vec<Range<usize>>> {
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for stage in 0..k {
        let remaining_stages = k - stage - 1;
        let max_end = n - remaining_stages;
        let mut end = None;
        for e in (start + 1)..=max_end {
            if model.stage_secs(stage, start..e) <= cap && model.fits(stage, start..e) {
                end = Some(e);
            } else if model.compute_secs(stage, start..e) > cap {
                // Compute alone already exceeds the cap; longer ranges
                // only grow, so stop extending.
                break;
            }
        }
        let e = end?;
        // The last stage must consume everything.
        if stage == k - 1 && e != n {
            return None;
        }
        ranges.push(start..e);
        start = e;
    }
    (start == n).then_some(ranges)
}

/// An incremental solver for `Nm` sweeps over one fixed
/// `(graph, gpus, links, schedule, recompute)` configuration — the
/// shape of the order search's proxy scoring and the system builder's
/// `Nm` selection, which both solve the *same* partitioning instance
/// at every `Nm` in a range.
///
/// The reuse step is **answer-preserving**, not heuristic. For flat
/// schedules (no co-located chunks), stage times depend on `Nm` only
/// through the per-stage checkpoint flags
/// ([`hetpipe_schedule::PipelineSchedule::recomputes_at`]); the memory
/// constraint is monotone in `Nm`, so the feasible cut set only
/// shrinks as `Nm` grows. If the optimum at a smaller `Nm` is still
/// feasible at the next `Nm` (an O(k) check) and the checkpoint flags
/// are unchanged, it is *the* optimum there — including the DP's
/// deterministic tie-breaking: any competitor that would tie it and
/// precede it in visit order at the larger `Nm` was also feasible (and
/// would have won) at the smaller one. `tests/planner_parity.rs` holds
/// every sweep cell against a fresh [`PartitionSolver::solve`].
#[derive(Debug, Clone)]
pub struct NmSweep<'a> {
    graph: &'a hetpipe_model::ModelGraph,
    gpus: Vec<hetpipe_cluster::gpu::GpuSpec>,
    links: Vec<hetpipe_cluster::network::LinkKind>,
    schedule: hetpipe_schedule::Schedule,
    recompute: hetpipe_schedule::RecomputePolicy,
    /// Last solved `(nm, plan, per-stage checkpoint flags)`.
    cached: Option<(usize, PartitionPlan, Vec<bool>)>,
}

impl<'a> NmSweep<'a> {
    /// Creates a sweep over the fixed configuration.
    pub fn new(
        graph: &'a hetpipe_model::ModelGraph,
        gpus: &[hetpipe_cluster::gpu::GpuSpec],
        links: &[hetpipe_cluster::network::LinkKind],
        schedule: hetpipe_schedule::Schedule,
        recompute: hetpipe_schedule::RecomputePolicy,
    ) -> Self {
        NmSweep {
            graph,
            gpus: gpus.to_vec(),
            links: links.to_vec(),
            schedule,
            recompute,
            cached: None,
        }
    }

    /// Solves at `nm`, reusing the previous solution when the reuse
    /// conditions prove it optimal. Identical results to
    /// [`PartitionSolver::solve`] on the same problem; the reuse step
    /// only fires for `nm` at or above the cached solve's (callers
    /// sweep ascending).
    pub fn solve(&mut self, nm: usize) -> Result<PartitionPlan, PartitionError> {
        use hetpipe_schedule::PipelineSchedule;
        let k = self.gpus.len();
        let flags: Vec<bool> = (0..k)
            .map(|s| self.schedule.recomputes_at(s, k, nm, self.recompute))
            .collect();
        if self.schedule.colocated_stages() == 1 {
            if let Some((prev_nm, plan, prev_flags)) = &self.cached {
                if *prev_nm <= nm && *prev_flags == flags {
                    // k O(1) probes via the unhoisted memory-model
                    // entry point — the fast path must not rebuild a
                    // whole StageCostModel (its O(k·n) prefix/comm
                    // tables are exactly what the reuse step saves).
                    let still_fits = plan.ranges.iter().enumerate().all(|(s, r)| {
                        hetpipe_model::TrainingMemoryModel::stage_fits_with(
                            self.graph,
                            r.clone(),
                            s,
                            k,
                            nm,
                            &self.gpus[s],
                            &self.schedule,
                            self.recompute,
                        )
                    });
                    if still_fits {
                        // Still feasible under the tighter constraint
                        // and the cost function is unchanged: the
                        // cached plan (values included — stage times
                        // only read the unchanged flags) is the fresh
                        // DP's exact output.
                        let plan = plan.clone();
                        self.cached = Some((nm, plan.clone(), flags));
                        return Ok(plan);
                    }
                }
            }
        }
        let problem = PartitionProblem::with_schedule(
            self.graph,
            self.gpus.clone(),
            self.links.clone(),
            nm,
            self.schedule,
        )
        .with_recompute(self.recompute);
        let result = PartitionSolver::solve(&problem);
        if let Ok(plan) = &result {
            self.cached = Some((nm, plan.clone(), flags));
        }
        result
    }
}

/// Finds the largest `Nm` in `1..=limit` for which a feasible partition
/// exists, together with its plan.
///
/// This is the paper's `Max_m` (Section 4): the maximum number of
/// minibatches that can concurrently execute in the virtual worker,
/// bounded by GPU memory.
pub fn max_feasible_nm(
    graph: &hetpipe_model::ModelGraph,
    gpus: &[hetpipe_cluster::gpu::GpuSpec],
    links: &[hetpipe_cluster::network::LinkKind],
    limit: usize,
) -> Option<(usize, PartitionPlan)> {
    max_feasible_nm_for(
        graph,
        gpus,
        links,
        limit,
        hetpipe_schedule::Schedule::HetPipeWave,
    )
}

/// [`max_feasible_nm`] under an arbitrary pipeline schedule: the
/// schedule's per-stage memory profile (in-flight activations, pinned
/// weight versions) shapes which `Nm` fit.
pub fn max_feasible_nm_for(
    graph: &hetpipe_model::ModelGraph,
    gpus: &[hetpipe_cluster::gpu::GpuSpec],
    links: &[hetpipe_cluster::network::LinkKind],
    limit: usize,
    schedule: hetpipe_schedule::Schedule,
) -> Option<(usize, PartitionPlan)> {
    max_feasible_nm_with(
        graph,
        gpus,
        links,
        limit,
        schedule,
        hetpipe_schedule::RecomputePolicy::None,
    )
}

/// [`max_feasible_nm_for`] under an activation-recomputation policy:
/// `BoundaryOnly` shrinks the per-stage memory term, so it typically
/// admits a larger `Max_m` on memory-bound clusters (at the cost of
/// one extra forward per backward in the plan's stage times).
pub fn max_feasible_nm_with(
    graph: &hetpipe_model::ModelGraph,
    gpus: &[hetpipe_cluster::gpu::GpuSpec],
    links: &[hetpipe_cluster::network::LinkKind],
    limit: usize,
    schedule: hetpipe_schedule::Schedule,
    recompute: hetpipe_schedule::RecomputePolicy,
) -> Option<(usize, PartitionPlan)> {
    {
        use hetpipe_schedule::PipelineSchedule;
        if schedule.colocated_stages() > 1 {
            // The gallop/binary edge-finding below needs solve()
            // feasibility to be a *prefix* of 1..=limit. That holds for
            // flat schedules (memory is monotone in Nm), but an
            // interleaved solve first certifies its Alone-mode optimum
            // with the joint per-GPU check — a different plan at every
            // Nm — so success is not provably monotone there. Keep the
            // linear scan for colocated schedules: answers before speed.
            return max_feasible_nm_linear(graph, gpus, links, limit, schedule, recompute);
        }
    }
    let solve_at = |nm: usize| {
        let p = PartitionProblem::with_schedule(graph, gpus.to_vec(), links.to_vec(), nm, schedule)
            .with_recompute(recompute);
        PartitionSolver::solve(&p).ok()
    };
    if limit == 0 {
        return None;
    }
    // Memory is monotone in Nm (every per-stage charge is
    // nondecreasing in the in-flight count and pinned versions), so
    // feasibility over 1..=limit is a prefix — gallop (1, 2, 4, …) to
    // bracket its edge, then binary-search inside the bracket, instead
    // of solving a DP per Nm. Galloping keeps the small-Max_m case as
    // cheap as the linear scan while large Max_m costs O(log) solves.
    // The gate is pinned by `max_feasible_nm_monotone_gate` /
    // `tests/planner_parity.rs`, which assert agreement with
    // [`max_feasible_nm_linear`] across a grid of clusters, models,
    // and schedules.
    let mut lo = (1, solve_at(1)?);
    let mut hi = None; // Smallest Nm proven infeasible, if any.
    let mut probe = 2;
    while probe <= limit {
        match solve_at(probe) {
            Some(plan) => lo = (probe, plan),
            None => {
                hi = Some(probe);
                break;
            }
        }
        if probe == limit {
            break;
        }
        probe = (probe * 2).min(limit);
    }
    if let Some(mut hi) = hi {
        // Invariant: lo feasible (plan held), hi infeasible.
        while hi - lo.0 > 1 {
            let mid = lo.0 + (hi - lo.0) / 2;
            match solve_at(mid) {
                Some(plan) => lo = (mid, plan),
                None => hi = mid,
            }
        }
    }
    Some((lo.0, lo.1))
}

/// Reference implementation of [`max_feasible_nm_with`]: the linear
/// `Nm` rescan the binary search replaced. Kept as the parity oracle
/// (`max_feasible_nm_monotone_gate`, `tests/planner_parity.rs`) and
/// the timing baseline `planner_bench` records.
pub fn max_feasible_nm_linear(
    graph: &hetpipe_model::ModelGraph,
    gpus: &[hetpipe_cluster::gpu::GpuSpec],
    links: &[hetpipe_cluster::network::LinkKind],
    limit: usize,
    schedule: hetpipe_schedule::Schedule,
    recompute: hetpipe_schedule::RecomputePolicy,
) -> Option<(usize, PartitionPlan)> {
    let mut best = None;
    for nm in 1..=limit {
        let p = PartitionProblem::with_schedule(graph, gpus.to_vec(), links.to_vec(), nm, schedule)
            .with_recompute(recompute);
        match PartitionSolver::solve(&p) {
            Ok(plan) => best = Some((nm, plan)),
            // Memory is monotone in Nm: once infeasible, larger Nm stays
            // infeasible.
            Err(_) => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::{GpuKind, LinkKind};
    use hetpipe_model::{mlp, resnet152, vgg19};

    fn homo4(graph: &hetpipe_model::ModelGraph, nm: usize) -> PartitionProblem<'_> {
        PartitionProblem::new(
            graph,
            vec![GpuKind::TitanV.spec(); 4],
            vec![LinkKind::Pcie; 3],
            nm,
        )
    }

    #[test]
    fn solves_vgg19_into_4_stages() {
        let g = vgg19(32);
        let plan = PartitionSolver::solve(&homo4(&g, 1)).unwrap();
        assert!(plan.is_valid_cover(g.len()));
        assert_eq!(plan.ranges.len(), 4);
        assert!(plan.bottleneck_secs > 0.0);
        // The bottleneck of a 4-way split should beat a single stage by
        // a decent margin (ideal 4x, transfers eat some).
        let whole = StageCostModel::new(&homo4(&g, 1)).compute_secs(0, 0..g.len());
        assert!(plan.bottleneck_secs < whole / 2.0);
    }

    #[test]
    fn heterogeneous_stages_get_uneven_layers() {
        // A fast GPU paired with slow ones should take more layers.
        let g = resnet152(32);
        let p = PartitionProblem::new(
            &g,
            vec![
                GpuKind::TitanV.spec(),
                GpuKind::TitanV.spec(),
                GpuKind::QuadroP4000.spec(),
                GpuKind::QuadroP4000.spec(),
            ],
            vec![LinkKind::Pcie; 3],
            1,
        );
        let plan = PartitionSolver::solve(&p).unwrap();
        let v_layers = plan.ranges[0].len() + plan.ranges[1].len();
        let q_layers = plan.ranges[2].len() + plan.ranges[3].len();
        assert!(
            v_layers > q_layers,
            "TITAN V stages took {v_layers} units vs Quadro's {q_layers}"
        );
    }

    #[test]
    fn too_many_stages_rejected() {
        let g = mlp(8, &[16, 16, 10]);
        let p = PartitionProblem::new(
            &g,
            vec![GpuKind::TitanV.spec(); 5],
            vec![LinkKind::Pcie; 4],
            1,
        );
        assert!(matches!(
            PartitionSolver::solve(&p),
            Err(PartitionError::TooManyStages {
                stages: 5,
                layers: 3
            })
        ));
    }

    #[test]
    fn memory_infeasible_rejected() {
        // ResNet-152 at batch 64 split only two ways across 6 GB GPUs:
        // whatever the cut, one stage carries activations it cannot hold.
        let g = resnet152(64);
        let p = PartitionProblem::new(
            &g,
            vec![GpuKind::Rtx2060.spec(); 2],
            vec![LinkKind::Pcie; 1],
            1,
        );
        assert_eq!(PartitionSolver::solve(&p), Err(PartitionError::OutOfMemory));
    }

    #[test]
    fn recompute_extends_feasible_nm() {
        use hetpipe_schedule::{RecomputePolicy, Schedule};
        // ResNet-152 @64 on 6 GB RTX 2060s: stashing full activations
        // caps the pipeline at a shallow Nm; boundary-only recompute
        // drops the per-minibatch stash to the boundary tensor and
        // admits much deeper concurrency.
        let g = resnet152(64);
        let gpus = vec![GpuKind::Rtx2060.spec(); 4];
        let links = vec![LinkKind::Pcie; 3];
        let limit = hetpipe_model::memory::nm_saturation_limit(4);
        let (plain, _) = max_feasible_nm_with(
            &g,
            &gpus,
            &links,
            limit,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        )
        .expect("feasible without recompute");
        let (ckpt, plan) = max_feasible_nm_with(
            &g,
            &gpus,
            &links,
            limit,
            Schedule::HetPipeWave,
            RecomputePolicy::BoundaryOnly,
        )
        .expect("feasible with recompute");
        assert!(
            ckpt > plain,
            "boundary-only recompute must admit deeper pipelines: {ckpt} vs {plain}"
        );
        assert!(plan.is_valid_cover(g.len()));
    }

    #[test]
    fn joint_check_admits_uneven_interleaved_chunks() {
        use hetpipe_schedule::Schedule;
        // 4 physical RTX 2060s × 2 interleaved chunks, VGG-19 at
        // Nm = 3: no cut satisfies the conservative equal-split
        // per-stage budget, but pairing a big chunk with a small one
        // fits each GPU jointly — the exact per-GPU check admits it.
        let g = vgg19(32);
        let sched = Schedule::Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let p = PartitionProblem::with_schedule(
            &g,
            vec![GpuKind::Rtx2060.spec(); 8],
            vec![LinkKind::Pcie; 7],
            3,
            sched,
        );
        assert_eq!(
            PartitionSolver::solve_with_mode(&p, MemMode::PerStage),
            Err(PartitionError::OutOfMemory),
            "the equal-split certification must reject this instance"
        );
        let plan = PartitionSolver::solve(&p).expect("the joint per-GPU check admits it");
        assert!(plan.is_valid_cover(g.len()));
        let model = StageCostModel::new(&p);
        assert!(
            model.plan_fits_per_gpu(&plan.ranges),
            "admitted plans must pass the exact joint check"
        );
        // The shares are genuinely uneven: at least one chunk exceeds
        // its equal split (which is why the old check rejected it).
        assert!(
            plan.ranges
                .iter()
                .enumerate()
                .any(|(s, r)| !model.fits(s, r.clone())),
            "expected an uneven big+small chunk pairing"
        );
    }

    #[test]
    fn max_feasible_nm_monotone_gate() {
        let g = resnet152(64);
        let gpus = vec![GpuKind::Rtx2060.spec(); 4];
        let links = vec![LinkKind::Pcie; 3];
        let limit = hetpipe_model::memory::nm_saturation_limit(4);
        let (nm, plan) = max_feasible_nm(&g, &gpus, &links, limit).unwrap();
        assert!(nm >= 1 && nm < limit, "6 GB GPUs cap concurrency, got {nm}");
        assert!(plan.is_valid_cover(g.len()));
        // One step further must be infeasible.
        let p = PartitionProblem::new(&g, gpus.clone(), links.clone(), nm + 1);
        assert!(PartitionSolver::solve(&p).is_err());

        // The binary search exists *because* of this monotone gate:
        // across a grid of clusters × models × schedules × recompute,
        // it must agree exactly with the linear rescan it replaced —
        // same Max_m, same plan.
        use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule};
        let vgg = vgg19(32);
        let rn64 = resnet152(64);
        let clusters: Vec<Vec<_>> = vec![
            vec![GpuKind::Rtx2060.spec(); 4],
            vec![GpuKind::TitanV.spec(); 4],
            vec![
                GpuKind::TitanV.spec(),
                GpuKind::TitanRtx.spec(),
                GpuKind::QuadroP4000.spec(),
                GpuKind::Rtx2060.spec(),
            ],
        ];
        for graph in [&vgg, &rn64] {
            for gpus in &clusters {
                for schedule in [
                    Schedule::HetPipeWave,
                    Schedule::OneFOneB,
                    // Colocated: the edge search must defer to the
                    // linear scan (joint-check feasibility is not
                    // provably monotone in Nm), so agreement here pins
                    // that fallback.
                    Schedule::Interleaved1F1B {
                        chunks: 2,
                        composite: true,
                    },
                ] {
                    for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                        let limit =
                            hetpipe_model::memory::nm_saturation_limit(schedule.virtual_stages(4));
                        let links = vec![LinkKind::Pcie; schedule.virtual_stages(4) - 1];
                        let gpus: Vec<_> = (0..schedule.virtual_stages(4))
                            .map(|s| gpus[s % 4].clone())
                            .collect();
                        let fast =
                            max_feasible_nm_with(graph, &gpus, &links, limit, schedule, recompute);
                        let slow = max_feasible_nm_linear(
                            graph, &gpus, &links, limit, schedule, recompute,
                        );
                        match (fast, slow) {
                            (None, None) => {}
                            (Some((a, pa)), Some((b, pb))) => {
                                assert_eq!(
                                    a, b,
                                    "{} {schedule} {recompute}: binary {a} vs linear {b}",
                                    graph.name
                                );
                                assert_eq!(pa.ranges, pb.ranges, "{} {schedule}", graph.name);
                            }
                            (a, b) => panic!(
                                "{} {schedule} {recompute}: binary {:?} vs linear {:?}",
                                graph.name,
                                a.map(|x| x.0),
                                b.map(|x| x.0)
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nm_sweep_matches_fresh_solves() {
        use hetpipe_schedule::{RecomputePolicy, Schedule};
        // Every sweep cell — including the flag transition at
        // Nm 1 → 2 under recompute and the memory-binding tail on the
        // whimpy GPUs — must be bit-identical to a fresh solve.
        let vgg = vgg19(32);
        let rn64 = resnet152(64);
        let clusters: Vec<Vec<_>> = vec![
            vec![GpuKind::Rtx2060.spec(); 4],
            vec![
                GpuKind::TitanV.spec(),
                GpuKind::TitanRtx.spec(),
                GpuKind::QuadroP4000.spec(),
                GpuKind::Rtx2060.spec(),
            ],
        ];
        for graph in [&vgg, &rn64] {
            for gpus in &clusters {
                for schedule in [
                    Schedule::HetPipeWave,
                    Schedule::OneFOneB,
                    Schedule::FillDrain,
                ] {
                    for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                        let links = vec![LinkKind::Pcie; 3];
                        let mut sweep = NmSweep::new(graph, gpus, &links, schedule, recompute);
                        for nm in 1..=hetpipe_model::memory::nm_saturation_limit(4) {
                            let p = PartitionProblem::with_schedule(
                                graph,
                                gpus.clone(),
                                links.clone(),
                                nm,
                                schedule,
                            )
                            .with_recompute(recompute);
                            let fresh = PartitionSolver::solve(&p);
                            let swept = sweep.solve(nm);
                            match (&fresh, &swept) {
                                (Ok(a), Ok(b)) => {
                                    assert_eq!(a.ranges, b.ranges, "{} {schedule} nm={nm}", graph.name);
                                    assert_eq!(
                                        a.stage_secs.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                                        b.stage_secs.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                                        "{} {schedule} {recompute} nm={nm}: stage times",
                                        graph.name
                                    );
                                }
                                (Err(a), Err(b)) => assert_eq!(a, b),
                                _ => panic!(
                                    "{} {schedule} {recompute} nm={nm}: fresh {fresh:?} vs sweep {swept:?}",
                                    graph.name
                                ),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn solve_warm_matches_cold() {
        use hetpipe_schedule::{RecomputePolicy, Schedule};
        // The replan shape: solve at nominal specs, derate one GPU by
        // an observed straggler severity, re-solve warm-started from
        // the nominal incumbent. The warm solve prunes cells above the
        // incumbent's (re-costed) bottleneck but must stay
        // bit-identical to the cold solve — plans, stage times, and
        // tie-breaks.
        let vgg = vgg19(32);
        let rn = resnet152(32);
        for graph in [&vgg, &rn] {
            for schedule in [Schedule::HetPipeWave, Schedule::OneFOneB] {
                for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                    for nm in [1usize, 2, 4] {
                        let nominal = vec![GpuKind::Rtx2060.spec(); 4];
                        let links = vec![LinkKind::Pcie; 3];
                        let base = PartitionProblem::with_schedule(
                            graph,
                            nominal.clone(),
                            links.clone(),
                            nm,
                            schedule,
                        )
                        .with_recompute(recompute);
                        let Ok(incumbent) = PartitionSolver::solve(&base) else {
                            continue;
                        };
                        let mut derated = nominal.clone();
                        derated[1] = derated[1].derated(1.3);
                        let replan = PartitionProblem::with_schedule(
                            graph,
                            derated,
                            links.clone(),
                            nm,
                            schedule,
                        )
                        .with_recompute(recompute);
                        let cold = PartitionSolver::solve(&replan);
                        let warm = PartitionSolver::solve_warm(&replan, Some(&incumbent.ranges));
                        match (&cold, &warm) {
                            (Ok(a), Ok(b)) => {
                                assert_eq!(
                                    a.ranges, b.ranges,
                                    "{} {schedule} {recompute} nm={nm}",
                                    graph.name
                                );
                                assert_eq!(
                                    a.stage_secs.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                                    b.stage_secs.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                                    "{} {schedule} nm={nm}: stage times",
                                    graph.name
                                );
                            }
                            (Err(a), Err(b)) => assert_eq!(a, b),
                            _ => panic!(
                                "{} {schedule} nm={nm}: cold {cold:?} vs warm {warm:?}",
                                graph.name
                            ),
                        }
                    }
                }
            }
        }
        // Degenerate warm starts degrade to the cold solve: no
        // incumbent, wrong stage count, or a non-cover.
        let p = homo4(&vgg, 2);
        let cold = PartitionSolver::solve(&p).unwrap();
        for inc in [
            None,
            Some(vec![0..vgg.len()]),
            Some(vec![0..1, 0..1, 1..2, 2..vgg.len()]),
        ] {
            let warm = PartitionSolver::solve_warm(&p, inc.as_deref()).unwrap();
            assert_eq!(warm.ranges, cold.ranges);
        }
    }

    #[test]
    fn greedy_matches_dp_without_memory_pressure() {
        let g = vgg19(32);
        let p = homo4(&g, 1);
        let dp = PartitionSolver::solve(&p).unwrap();
        let greedy = PartitionSolver::solve_greedy(&p).unwrap();
        // Greedy is not always optimal but must be within a few percent
        // here and never better than the exact optimum.
        assert!(greedy.bottleneck_secs >= dp.bottleneck_secs - 1e-12);
        assert!(greedy.bottleneck_secs <= dp.bottleneck_secs * 1.10);
    }

    #[test]
    fn single_stage_takes_everything() {
        let g = vgg19(32);
        let p = PartitionProblem::new(&g, vec![GpuKind::TitanRtx.spec()], vec![], 1);
        let plan = PartitionSolver::solve(&p).unwrap();
        assert_eq!(plan.ranges, vec![0..g.len()]);
        assert_eq!(plan.stage_secs.len(), 1);
    }

    #[test]
    fn plan_stage_times_consistent() {
        let g = resnet152(32);
        let p = homo4(&g, 4);
        let plan = PartitionSolver::solve(&p).unwrap();
        let model = StageCostModel::new(&p);
        for (s, r) in plan.ranges.iter().enumerate() {
            assert!((plan.stage_secs[s] - model.stage_secs(s, r.clone())).abs() < 1e-12);
        }
        assert!(
            (plan.bottleneck_secs - plan.stage_secs.iter().cloned().fold(0.0, f64::max)).abs()
                < 1e-15
        );
    }
}
