//! Heterogeneity- and memory-aware model partitioning.
//!
//! Section 7 of the paper: *"the goal of our partitioning algorithm is to
//! minimize the maximum execution time of the partitions within the
//! bounds of satisfying the memory requirement"*, solved there with
//! CPLEX. This crate solves the identical optimization exactly, without
//! an external solver:
//!
//! - [`cost`] — per-stage execution time: layer compute on the stage's
//!   GPU plus the time to receive activations (forward) and local
//!   gradients (backward) over the stage's incoming links.
//! - [`solver`] — an interval dynamic program over contiguous layer
//!   ranges, O(k · L²), exact for the min–max objective with
//!   position-dependent memory constraints, plus a faster
//!   binary-search/greedy variant used as a comparison point.
//! - [`brute`] — exhaustive enumeration of cut sets, used by tests to
//!   certify the DP's optimality on small instances.
//! - [`order`] — stage-order search: with heterogeneous GPUs the
//!   assignment of GPUs to pipeline positions matters (late stages hold
//!   fewer in-flight minibatches, so memory-poor GPUs prefer late
//!   positions); enumerates distinct permutations with memoization.

pub mod brute;
pub mod cost;
pub mod order;
pub mod solver;

pub use cost::{PartitionProblem, StageCostModel};
pub use order::{best_order, OrderSearchResult};
pub use order::{evaluate_orders, search_orders_par};
pub use solver::{
    max_feasible_nm, max_feasible_nm_for, max_feasible_nm_linear, max_feasible_nm_with, NmSweep,
    PartitionError, PartitionPlan, PartitionSolver,
};
