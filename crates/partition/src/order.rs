//! Stage-order search for heterogeneous virtual workers.
//!
//! With heterogeneous GPUs inside one virtual worker, which GPU serves
//! which pipeline position matters twice over: memory-poor GPUs prefer
//! *late* stages (fewer in-flight minibatches to hold, per the
//! Figure-1 analysis), and the inter-stage links depend on which GPUs
//! end up adjacent. The paper fixes an assignment per allocation policy;
//! we additionally search over distinct stage orders and keep the best.

use crate::cost::PartitionProblem;
use crate::solver::{PartitionPlan, PartitionSolver};
use hetpipe_cluster::gpu::GpuSpec;
use hetpipe_cluster::network::LinkKind;
use hetpipe_model::ModelGraph;
use std::collections::HashSet;

/// Result of a stage-order search.
#[derive(Debug, Clone)]
pub struct OrderSearchResult {
    /// Indices into the input GPU list, one per stage, best order found.
    pub order: Vec<usize>,
    /// The plan for that order.
    pub plan: PartitionPlan,
    /// Number of distinct orders evaluated.
    pub evaluated: usize,
}

/// Enumerates the distinct kind-orders of `gpus` (permutations
/// deduplicated by their GPU-kind name sequence), in a fixed
/// deterministic order — the enumeration order every search and
/// reduction below is defined against.
///
/// # Panics
///
/// Panics if `gpus` is empty.
pub fn distinct_kind_orders(gpus: &[GpuSpec]) -> Vec<Vec<usize>> {
    assert!(!gpus.is_empty(), "need at least one GPU");
    let mut orders = Vec::new();
    let mut seen = HashSet::new();
    let mut indices: Vec<usize> = (0..gpus.len()).collect();
    permute(&mut indices, 0, &mut |order| {
        // Deduplicate orders that read identically kind-wise.
        let key: Vec<&'static str> = order.iter().map(|&i| gpus[i].name).collect();
        if seen.insert(key) {
            orders.push(order.to_vec());
        }
    });
    orders
}

/// Evaluates every distinct kind-order of `gpus`, fanning the
/// (independent) evaluations across `std::thread::scope` worker
/// threads, and returns the per-order results **in enumeration
/// order**. Each result lands in the slot of its own index, so the
/// output — and anything reduced from it — is bit-identical to a
/// serial evaluation regardless of thread count or completion order.
///
/// Each order's evaluation is typically a full partition solve (or an
/// `Nm` sweep of them), so the fan-out amortizes even at the paper's
/// 4-GPU scale (24 distinct orders).
///
/// # Panics
///
/// Panics if `gpus` is empty.
pub fn evaluate_orders<R: Send>(
    gpus: &[GpuSpec],
    eval: impl Fn(&[usize]) -> Option<R> + Sync,
) -> Vec<(Vec<usize>, Option<R>)> {
    let orders = distinct_kind_orders(gpus);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(orders.len());
    let mut results: Vec<Option<R>> = Vec::with_capacity(orders.len());
    results.resize_with(orders.len(), || None);
    if threads <= 1 {
        for (order, slot) in orders.iter().zip(results.iter_mut()) {
            *slot = eval(order);
        }
    } else {
        let chunk = orders.len().div_ceil(threads);
        let eval = &eval;
        std::thread::scope(|scope| {
            for (os, rs) in orders.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (order, slot) in os.iter().zip(rs.iter_mut()) {
                        *slot = eval(order);
                    }
                });
            }
        });
    }
    orders.into_iter().zip(results).collect()
}

/// Searches all distinct kind-orders of `gpus`, scoring each with a
/// caller-supplied evaluator (higher is better; `None` = infeasible),
/// and returns the best `(order, score, evaluated_count)`.
///
/// This is the *serial reference* engine behind the parallel
/// [`search_orders_par`] (kept because `FnMut` evaluators cannot fan
/// out, and as the parity oracle `tests/planner_parity.rs` holds the
/// parallel search against); system-level callers use the parallel
/// form with richer objectives (e.g. an estimated-throughput proxy
/// that accounts for the memory-limited `Max_m` of each order).
///
/// # Panics
///
/// Panics if `gpus` is empty.
pub fn search_orders(
    gpus: &[GpuSpec],
    mut eval: impl FnMut(&[usize]) -> Option<f64>,
) -> Option<(Vec<usize>, f64, usize)> {
    let orders = distinct_kind_orders(gpus);
    let evaluated = orders.len();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for order in orders {
        if let Some(score) = eval(&order) {
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((order, score));
            }
        }
    }
    best.map(|(order, score)| (order, score, evaluated))
}

/// [`search_orders`] with the evaluations fanned across scoped worker
/// threads. The reduction walks the results in enumeration order and
/// replaces only on a strictly greater score — exactly the serial
/// fold — so the winning order is bit-identical to [`search_orders`]
/// for the same evaluator.
///
/// # Panics
///
/// Panics if `gpus` is empty.
pub fn search_orders_par(
    gpus: &[GpuSpec],
    eval: impl Fn(&[usize]) -> Option<f64> + Sync,
) -> Option<(Vec<usize>, f64, usize)> {
    let results = evaluate_orders(gpus, eval);
    let evaluated = results.len();
    let mut best: Option<(Vec<usize>, f64)> = None;
    for (order, score) in results {
        if let Some(score) = score {
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((order, score));
            }
        }
    }
    best.map(|(order, score)| (order, score, evaluated))
}

/// Searches all distinct orders of `gpus` (deduplicating identical GPU
/// kinds by name) and returns the order with the smallest feasible
/// bottleneck. The per-order solves fan across scoped worker threads
/// ([`search_orders_par`]); the winner is identical to a serial
/// search.
///
/// `links_for` maps a candidate order (indices into `gpus`) to the
/// `k - 1` inter-stage links, since adjacency decides PCIe vs
/// InfiniBand. Returns `None` when no order admits a feasible partition.
///
/// # Panics
///
/// Panics if `gpus` is empty.
pub fn best_order(
    graph: &ModelGraph,
    gpus: &[GpuSpec],
    nm: usize,
    links_for: impl Fn(&[usize]) -> Vec<LinkKind> + Sync,
) -> Option<OrderSearchResult> {
    let result = search_orders_par(gpus, |order| {
        let ordered: Vec<GpuSpec> = order.iter().map(|&i| gpus[i].clone()).collect();
        let links = links_for(order);
        let problem = PartitionProblem::new(graph, ordered, links, nm);
        PartitionSolver::solve(&problem)
            .ok()
            .map(|plan| -plan.bottleneck_secs)
    });
    result.map(|(order, _score, evaluated)| {
        let ordered: Vec<GpuSpec> = order.iter().map(|&i| gpus[i].clone()).collect();
        let links = links_for(&order);
        let plan = PartitionSolver::solve(&PartitionProblem::new(graph, ordered, links, nm))
            .expect("winning order must be solvable");
        OrderSearchResult {
            order,
            plan,
            evaluated,
        }
    })
}

/// Heap-style in-place permutation visitor.
fn permute(items: &mut Vec<usize>, start: usize, visit: &mut impl FnMut(&[usize])) {
    if start == items.len() {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, visit);
        items.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;
    use hetpipe_model::{resnet152, vgg19};

    #[test]
    fn homogeneous_order_is_unique() {
        let g = vgg19(32);
        let gpus = vec![GpuKind::TitanV.spec(); 4];
        let res = best_order(&g, &gpus, 1, |_| vec![LinkKind::Pcie; 3]).unwrap();
        assert_eq!(res.evaluated, 1, "all orders of identical GPUs coincide");
        assert!(res.plan.is_valid_cover(g.len()));
    }

    #[test]
    fn heterogeneous_order_count() {
        let g = vgg19(32);
        let gpus = vec![
            GpuKind::TitanV.spec(),
            GpuKind::TitanV.spec(),
            GpuKind::QuadroP4000.spec(),
            GpuKind::QuadroP4000.spec(),
        ];
        let res = best_order(&g, &gpus, 1, |_| vec![LinkKind::Pcie; 3]).unwrap();
        // 4!/(2!2!) = 6 distinct kind-orders.
        assert_eq!(res.evaluated, 6);
    }

    #[test]
    fn order_search_beats_or_matches_fixed_order() {
        let g = resnet152(32);
        let gpus = vec![
            GpuKind::QuadroP4000.spec(),
            GpuKind::Rtx2060.spec(),
            GpuKind::TitanRtx.spec(),
            GpuKind::TitanV.spec(),
        ];
        let fixed = PartitionSolver::solve(&PartitionProblem::new(
            &g,
            gpus.clone(),
            vec![LinkKind::Pcie; 3],
            4,
        ));
        let searched = best_order(&g, &gpus, 4, |_| vec![LinkKind::Pcie; 3]).unwrap();
        if let Ok(fixed) = fixed {
            assert!(searched.plan.bottleneck_secs <= fixed.bottleneck_secs + 1e-12);
        }
        assert_eq!(searched.evaluated, 24);
    }

    #[test]
    fn parallel_search_matches_serial_exactly() {
        let g = resnet152(32);
        let gpus = vec![
            GpuKind::QuadroP4000.spec(),
            GpuKind::Rtx2060.spec(),
            GpuKind::TitanRtx.spec(),
            GpuKind::TitanV.spec(),
        ];
        let eval = |order: &[usize]| {
            let ordered: Vec<GpuSpec> = order.iter().map(|&i| gpus[i].clone()).collect();
            let problem = PartitionProblem::new(&g, ordered, vec![LinkKind::Pcie; 3], 4);
            PartitionSolver::solve(&problem)
                .ok()
                .map(|plan| -plan.bottleneck_secs)
        };
        let serial = search_orders(&gpus, eval).unwrap();
        let parallel = search_orders_par(&gpus, eval).unwrap();
        assert_eq!(serial.0, parallel.0, "winning order must be bit-identical");
        assert_eq!(serial.1.to_bits(), parallel.1.to_bits(), "score");
        assert_eq!(serial.2, parallel.2, "evaluated count");
        // The raw fan-out result set is in enumeration order.
        let results = evaluate_orders(&gpus, eval);
        assert_eq!(results.len(), 24);
        assert_eq!(
            results.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
            distinct_kind_orders(&gpus)
        );
        for (order, score) in &results {
            assert_eq!(
                score.map(f64::to_bits),
                eval(order).map(f64::to_bits),
                "slot content must match a direct evaluation"
            );
        }
    }

    #[test]
    fn link_resolver_sees_orders() {
        // A resolver that punishes putting GPU 0 adjacent to GPU 1
        // steers the search away from such orders (indirect check that
        // orders are propagated).
        let g = vgg19(32);
        let gpus = vec![
            GpuKind::TitanV.spec(),
            GpuKind::TitanRtx.spec(),
            GpuKind::Rtx2060.spec(),
            GpuKind::QuadroP4000.spec(),
        ];
        let res = best_order(&g, &gpus, 1, |order| {
            order
                .windows(2)
                .map(|w| {
                    if (w[0] == 0 && w[1] == 1) || (w[0] == 1 && w[1] == 0) {
                        LinkKind::Infiniband
                    } else {
                        LinkKind::Pcie
                    }
                })
                .collect()
        })
        .unwrap();
        let adjacent_01 = res
            .order
            .windows(2)
            .any(|w| (w[0] == 0 && w[1] == 1) || (w[0] == 1 && w[1] == 0));
        // Not a hard guarantee, but with all else equal the search should
        // avoid the slow link.
        assert!(!adjacent_01, "search picked a punished adjacency");
    }
}
