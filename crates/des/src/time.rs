//! Fixed-point simulated time.
//!
//! Simulated time is an integer count of nanoseconds. Using a fixed-point
//! representation (rather than `f64` seconds) gives simulated runs a total
//! event order independent of floating-point rounding, which the
//! determinism property tests rely on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in integer nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration;
/// arithmetic saturates at zero on subtraction underflow rather than
/// panicking, because "how long until an event in the past" is always
/// zero in simulation logic.
///
/// # Examples
///
/// ```
/// use hetpipe_des::SimTime;
/// let t = SimTime::from_secs(1.5);
/// assert_eq!(t.as_nanos(), 1_500_000_000);
/// assert!((t.as_secs() - 1.5).abs() < 1e-12);
/// assert_eq!(SimTime::ZERO - t, SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs a time from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Constructs a time from integer microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Constructs a time from integer milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Constructs a time from (possibly fractional) seconds.
    ///
    /// Negative and NaN inputs clamp to zero; positive infinity and
    /// values beyond the representable range clamp to [`SimTime::MAX`].
    pub fn from_secs(secs: f64) -> SimTime {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// This time as integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as floating-point seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs();
        if secs >= 1.0 {
            write!(f, "{secs:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2.0).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs(0.123456789);
        assert!((t.as_secs() - 0.123456789).abs() < 1e-9);
    }

    #[test]
    fn pathological_inputs_clamp() {
        assert_eq!(SimTime::from_secs(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NAN), SimTime::ZERO);
        assert_eq!(
            SimTime::from_secs(f64::INFINITY),
            SimTime::ZERO.max(SimTime::MAX)
        );
        assert_eq!(SimTime::from_secs(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_nanos(20));
        assert_eq!(SimTime::MAX + b, SimTime::MAX);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(3),
                SimTime::from_nanos(5)
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_nanos(42).to_string(), "42ns");
    }
}
