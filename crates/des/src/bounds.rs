//! Trace-free occupancy-bound vocabulary.
//!
//! Three layers talk about "peak activation occupancy" of a stage or a
//! GPU, and each knows a different number:
//!
//! - **measured** — the realized peak, read off a simulated span trace
//!   (`hetpipe-core`'s `OccupancyAudit`). Only exists after a run.
//! - **structural** — the peak implied by the schedule's committed op
//!   order alone (`hetpipe-verify`'s stream-graph pass). Exists
//!   *before* any run: it is a property of the stream, not of timing.
//! - **declared** — the schedule's contract
//!   (`PipelineSchedule::max_in_flight`), what the memory model
//!   charges and the executor enforces.
//!
//! Soundness is the chain `measured ≤ structural ≤ declared`: the
//! trace can never exceed what the op order permits, and the op order
//! can never exceed what was certified. This module is the shared
//! vocabulary for that chain — a plain data triple with the soundness
//! and over-reservation predicates — so the dynamic audit and the
//! static verifier compose without either depending on the other.

use std::fmt;

/// What a bound is about: one executor stage or one physical GPU of a
/// virtual worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundEntity {
    /// One executor (virtual) stage of a virtual worker.
    Stage {
        /// Virtual worker index.
        vw: usize,
        /// Executor stage index (0-based).
        stage: usize,
    },
    /// One physical GPU of a virtual worker (co-located interleaved
    /// chunks summed).
    Gpu {
        /// Virtual worker index.
        vw: usize,
        /// Physical GPU position within the VW (0-based).
        gpu: usize,
    },
}

impl fmt::Display for BoundEntity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BoundEntity::Stage { vw, stage } => write!(f, "vw{vw} stage {stage}"),
            BoundEntity::Gpu { vw, gpu } => write!(f, "vw{vw} gpu {gpu}"),
        }
    }
}

/// The measured / structural / declared occupancy triple of one
/// entity. `measured` and `structural` are optional because they come
/// from different passes (a static check has no trace; a dynamic audit
/// has no stream graph); `declared` always exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyBound {
    /// What the bound is about.
    pub entity: BoundEntity,
    /// Trace-measured peak, when a run's trace was audited.
    pub measured: Option<i64>,
    /// Stream-structural peak, when the static verifier ran.
    pub structural: Option<i64>,
    /// The schedule's declared (memory-charged, executor-enforced)
    /// bound.
    pub declared: i64,
}

impl OccupancyBound {
    /// True when every present component respects the chain
    /// `measured ≤ structural ≤ declared`.
    pub fn is_sound(&self) -> bool {
        self.violation().is_none()
    }

    /// The first broken link of the chain, rendered for reporting;
    /// `None` when the triple is sound.
    pub fn violation(&self) -> Option<String> {
        let e = self.entity;
        if let (Some(m), Some(s)) = (self.measured, self.structural) {
            if m > s {
                return Some(format!("{e}: measured {m} exceeds structural bound {s}"));
            }
        }
        if let Some(s) = self.structural {
            if s > self.declared {
                return Some(format!(
                    "{e}: structural peak {s} exceeds declared {}",
                    self.declared
                ));
            }
        }
        if let Some(m) = self.measured {
            if m > self.declared {
                return Some(format!(
                    "{e}: measured peak {m} exceeds declared {}",
                    self.declared
                ));
            }
        }
        None
    }

    /// True when the declaration is loose by more than `factor`×
    /// against the structural peak — the over-reservation lint
    /// (`declared > factor × structural`). Always false when no
    /// structural bound is present or the structural peak is zero
    /// (an idle entity reserves nothing worth linting).
    pub fn over_reserved(&self, factor: i64) -> bool {
        match self.structural {
            Some(s) if s > 0 => self.declared > factor * s,
            _ => false,
        }
    }
}

impl fmt::Display for OccupancyBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.entity)?;
        match self.measured {
            Some(m) => write!(f, "measured {m} ")?,
            None => write!(f, "measured - ")?,
        }
        match self.structural {
            Some(s) => write!(f, "/ structural {s} ")?,
            None => write!(f, "/ structural - ")?,
        }
        write!(f, "/ declared {}", self.declared)
    }
}

/// Checks a batch of bounds, collecting every violation. `Ok` iff all
/// triples are sound.
pub fn check_bounds(bounds: &[OccupancyBound]) -> Result<(), Vec<String>> {
    let violations: Vec<String> = bounds
        .iter()
        .filter_map(OccupancyBound::violation)
        .collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(measured: Option<i64>, structural: Option<i64>, declared: i64) -> OccupancyBound {
        OccupancyBound {
            entity: BoundEntity::Stage { vw: 0, stage: 1 },
            measured,
            structural,
            declared,
        }
    }

    #[test]
    fn soundness_chain() {
        assert!(b(Some(2), Some(3), 4).is_sound());
        assert!(b(Some(4), Some(4), 4).is_sound());
        assert!(b(None, Some(3), 4).is_sound());
        assert!(b(Some(3), None, 4).is_sound());
        assert!(b(None, None, 0).is_sound());
        // Each link can break independently.
        assert!(!b(Some(4), Some(3), 4).is_sound(), "measured > structural");
        assert!(!b(None, Some(5), 4).is_sound(), "structural > declared");
        assert!(!b(Some(5), None, 4).is_sound(), "measured > declared");
    }

    #[test]
    fn violation_names_the_broken_link() {
        let v = b(Some(4), Some(3), 4).violation().unwrap();
        assert!(v.contains("measured 4"), "{v}");
        let v = b(None, Some(9), 4).violation().unwrap();
        assert!(v.contains("structural peak 9"), "{v}");
    }

    #[test]
    fn over_reservation_lint() {
        // declared 4 vs structural 1: loose by 4× > 2×.
        assert!(b(None, Some(1), 4).over_reserved(2));
        // Exactly 2× is not "loose by more than 2×".
        assert!(!b(None, Some(2), 4).over_reserved(2));
        // No structural bound or an idle entity: nothing to lint.
        assert!(!b(None, None, 100).over_reserved(2));
        assert!(!b(None, Some(0), 100).over_reserved(2));
    }

    #[test]
    fn batch_check_collects_all() {
        let all = [b(Some(1), Some(2), 4), b(Some(9), Some(2), 4)];
        let errs = check_bounds(&all).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(check_bounds(&all[..1]).is_ok());
    }

    #[test]
    fn display_renders_gpu_entities() {
        let bound = OccupancyBound {
            entity: BoundEntity::Gpu { vw: 2, gpu: 3 },
            measured: Some(1),
            structural: None,
            declared: 5,
        };
        let s = bound.to_string();
        assert!(s.contains("vw2 gpu 3"), "{s}");
        assert!(s.contains("declared 5"), "{s}");
    }
}
