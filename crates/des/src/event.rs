//! Deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant pop in the order they were scheduled. This makes
//! simulation runs reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queued for a future instant.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A min-ordered event queue with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use hetpipe_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "b");
/// q.push(SimTime::from_nanos(5), "a");
/// q.push(SimTime::from_nanos(10), "c");
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(5), "a"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(10), "b"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(10), "c"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &(t, v) in &[(30u64, 3), (10, 1), (20, 2)] {
            q.push(SimTime::from_nanos(t), v);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        for v in 0..50 {
            q.push(t, v);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 'a');
        q.push(SimTime::from_nanos(1), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(SimTime::from_nanos(2), 'c');
        q.push(SimTime::from_nanos(7), 'd');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'd');
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
