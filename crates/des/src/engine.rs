//! The simulation driver.
//!
//! An [`EngineCore`] owns the event queue and the simulation clock.
//! Client code pops events one at a time (or runs a handler loop) and
//! schedules follow-up events; the clock only moves forward.
//!
//! The core is deliberately *drivable*: besides the classic
//! self-contained pop loop ([`EngineCore::next_event`] /
//! [`EngineCore::next_event_until`]), an external scheduler — such as
//! the parallel fleet driver in `hetpipe-fleet`, which runs one core
//! per virtual worker — can inspect the next local timestamp
//! ([`EngineCore::peek_time`]) and inject externally-decided actions at
//! an exact instant ([`EngineCore::advance_to`]) before the next local
//! event fires. [`Engine`] remains as an alias for the standalone use.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A discrete-event simulation engine over event type `E`.
///
/// # Examples
///
/// A tiny two-event simulation:
///
/// ```
/// use hetpipe_des::{Engine, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimTime::from_millis(1), Ev::Ping);
/// let mut log = Vec::new();
/// while let Some(ev) = engine.next_event() {
///     if ev == Ev::Ping {
///         engine.schedule_in(SimTime::from_millis(2), Ev::Pong);
///     }
///     log.push((engine.now(), ev));
/// }
/// assert_eq!(log.len(), 2);
/// assert_eq!(log[1].0, SimTime::from_millis(3));
/// ```
#[derive(Debug)]
pub struct EngineCore<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

/// The standalone engine: one self-driving [`EngineCore`].
pub type Engine<E> = EngineCore<E>;

impl<E> Default for EngineCore<E> {
    fn default() -> Self {
        EngineCore {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }
}

impl<E> EngineCore<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now` (they will fire
    /// immediately, after already-queued events at `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Schedules `event` after a `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn next_event(&mut self) -> Option<E> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "time must be monotone");
        self.now = time;
        self.processed += 1;
        Some(event)
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// Used by bounded-horizon runs: events after the deadline stay
    /// queued and the clock does not advance past them.
    pub fn next_event_until(&mut self, deadline: SimTime) -> Option<E> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.next_event(),
            _ => None,
        }
    }

    /// Timestamp of the next queued event without popping it — the
    /// core's *frontier* when an external scheduler drives it: no
    /// purely local action can occur before this instant.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the clock to `at` without popping an event, so an
    /// externally-decided action (e.g. a fleet bus serving a pull the
    /// moment a remote push lands) can be applied at its exact instant
    /// and *before* any local event queued at that same instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` would move the clock backwards
    /// or jump past a queued event (the driver must never skip local
    /// causality).
    pub fn advance_to(&mut self, at: SimTime) {
        debug_assert!(at >= self.now, "time must be monotone");
        debug_assert!(
            self.queue.peek_time().is_none_or(|t| at <= t),
            "advance_to must not jump past a queued event"
        );
        self.now = self.now.max(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_in(SimTime::from_nanos(10), 1);
        e.schedule_in(SimTime::from_nanos(5), 2);
        assert_eq!(e.next_event(), Some(2));
        assert_eq!(e.now(), SimTime::from_nanos(5));
        assert_eq!(e.next_event(), Some(1));
        assert_eq!(e.now(), SimTime::from_nanos(10));
        assert_eq!(e.next_event(), None);
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_in(SimTime::from_nanos(100), "later");
        e.next_event();
        e.schedule_at(SimTime::from_nanos(1), "past");
        assert_eq!(e.next_event(), Some("past"));
        assert_eq!(e.now(), SimTime::from_nanos(100), "clock must not go back");
    }

    #[test]
    fn bounded_horizon_stops_at_deadline() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_in(SimTime::from_nanos(10), 1);
        e.schedule_in(SimTime::from_nanos(20), 2);
        let deadline = SimTime::from_nanos(15);
        assert_eq!(e.next_event_until(deadline), Some(1));
        assert_eq!(e.next_event_until(deadline), None);
        assert_eq!(e.pending(), 1, "event after deadline stays queued");
        assert_eq!(e.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn externally_driven_core() {
        // An external driver peeks the frontier, injects an action
        // between queued events, and resumes the local pop loop.
        let mut e: EngineCore<u32> = EngineCore::new();
        e.schedule_in(SimTime::from_nanos(10), 1);
        assert_eq!(e.peek_time(), Some(SimTime::from_nanos(10)));
        e.advance_to(SimTime::from_nanos(7));
        assert_eq!(
            e.now(),
            SimTime::from_nanos(7),
            "externally-decided instant"
        );
        // Actions injected at the advanced clock order before the
        // queued event.
        e.schedule_in(SimTime::ZERO, 99);
        assert_eq!(e.next_event(), Some(99));
        assert_eq!(e.next_event(), Some(1));
        // advance_to is idempotent at the current instant.
        e.advance_to(SimTime::from_nanos(10));
        assert_eq!(e.now(), SimTime::from_nanos(10));
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn handler_driven_cascade() {
        // Each event spawns the next until a count is reached; verifies
        // scheduling from inside the pop loop.
        let mut e: Engine<u32> = Engine::new();
        e.schedule_in(SimTime::from_nanos(1), 0);
        let mut seen = Vec::new();
        while let Some(n) = e.next_event() {
            seen.push(n);
            if n < 4 {
                e.schedule_in(SimTime::from_nanos(1), n + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(e.now(), SimTime::from_nanos(5));
    }
}
