//! Span traces for post-run analysis.
//!
//! Executors record labelled time spans (`forward pass of minibatch 7 on
//! stage 2`, `push of wave 3`, …). The trace then answers the questions
//! the paper's evaluation asks: per-GPU utilization over a window
//! (Figure 3), waiting time vs true idle time during synchronization
//! (Section 8.4), and per-minibatch latency distributions.

use crate::resource::ResourceId;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

/// A labelled interval on a resource's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span<T> {
    /// The resource the span occupied.
    pub resource: ResourceId,
    /// Start instant.
    pub start: SimTime,
    /// End instant (`end >= start`).
    pub end: SimTime,
    /// Client-defined label (e.g. an enum of Forward/Backward/Push/Pull).
    pub tag: T,
}

impl<T> Span<T> {
    /// The span's duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// An append-only collection of spans.
#[derive(Debug, Clone)]
pub struct Trace<T> {
    spans: Vec<Span<T>>,
}

impl<T> Default for Trace<T> {
    fn default() -> Self {
        Trace { spans: Vec::new() }
    }
}

impl<T> Trace<T> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a span.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    pub fn record(&mut self, resource: ResourceId, start: SimTime, end: SimTime, tag: T) {
        debug_assert!(end >= start, "span must not be inverted");
        self.spans.push(Span {
            resource,
            start,
            end,
            tag,
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span<T>] {
        &self.spans
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total busy time of `resource` within the window `[from, to)`,
    /// clipping spans that straddle the window edges.
    ///
    /// Scans the whole trace; callers issuing many windowed queries
    /// (per stage, per GPU, per wait window) should build a
    /// [`TraceIndex`] once and query that instead.
    pub fn busy_within(&self, resource: ResourceId, from: SimTime, to: SimTime) -> SimTime {
        let mut acc = SimTime::ZERO;
        for s in &self.spans {
            if s.resource != resource {
                continue;
            }
            let lo = s.start.max(from);
            let hi = s.end.min(to);
            if hi > lo {
                acc += hi - lo;
            }
        }
        acc
    }

    /// Builds a per-resource span index over the current trace
    /// contents, for repeated windowed occupancy queries without
    /// rescanning the full trace per call.
    pub fn index(&self) -> TraceIndex {
        let mut per_resource: BTreeMap<ResourceId, IndexedSpans> = BTreeMap::new();
        for s in &self.spans {
            per_resource
                .entry(s.resource)
                .or_default()
                .spans
                .push((s.start, s.end));
        }
        for idx in per_resource.values_mut() {
            // Executors record each resource's FIFO timeline in start
            // order already; sort defensively so the binary searches
            // below never depend on that.
            idx.spans.sort();
            let mut cummax = SimTime::ZERO;
            idx.cummax_end = idx
                .spans
                .iter()
                .map(|&(_, end)| {
                    cummax = cummax.max(end);
                    cummax
                })
                .collect();
        }
        TraceIndex { per_resource }
    }

    /// Utilization of `resource` within `[from, to)`.
    ///
    /// Returns 0 for an empty window.
    pub fn utilization_within(&self, resource: ResourceId, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.busy_within(resource, from, to).as_secs() / (to - from).as_secs()
    }

    /// Sums the durations of all spans whose tag satisfies `pred`.
    pub fn total_where(&self, mut pred: impl FnMut(&T) -> bool) -> SimTime {
        let mut acc = SimTime::ZERO;
        for s in &self.spans {
            if pred(&s.tag) {
                acc += s.duration();
            }
        }
        acc
    }

    /// Counts spans whose tag satisfies `pred`.
    pub fn count_where(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        self.spans.iter().filter(|s| pred(&s.tag)).count()
    }

    /// Trace-measured peak concurrency: `events` maps each span to any
    /// number of `(key, instant, delta)` occupancy events (e.g. +1
    /// when a forward pass completes and its activations materialize,
    /// −1 when the matching backward completes and releases them);
    /// returns, per key, the maximum running sum ever reached.
    ///
    /// Events at the same instant are applied releases-first
    /// (ascending `delta`), so a handoff at an instant does not count
    /// as overlap. This is the measurement half of the
    /// measured ≤ declared memory invariant: executors *declare* peak
    /// activation occupancy through their schedule's accounting, and
    /// this computes what a run actually did.
    pub fn peak_concurrent<K: Ord>(
        &self,
        mut events: impl FnMut(&Span<T>) -> Vec<(K, SimTime, i64)>,
    ) -> BTreeMap<K, i64> {
        let mut per_key: BTreeMap<K, Vec<(SimTime, i64)>> = BTreeMap::new();
        for span in &self.spans {
            for (key, at, delta) in events(span) {
                per_key.entry(key).or_default().push((at, delta));
            }
        }
        per_key
            .into_iter()
            .map(|(key, evs)| (key, peak_of_events(evs)))
            .collect()
    }

    /// Writes the trace in the `chrome://tracing` / Perfetto JSON
    /// event format: one complete (`"ph": "X"`) event per span, one
    /// track (`tid`) per resource, with thread-name metadata naming
    /// each track after its resource.
    ///
    /// `track_names` maps a [`ResourceId`] to a track label (e.g.
    /// `"gpu3"`, `"nic0"`); `name_of` and `category_of` render a
    /// span's tag into the event name and category. Timestamps are
    /// emitted in microseconds (the format's unit) with sub-µs
    /// precision preserved as fractions.
    ///
    /// The serialization issues one small `write!` per event, so the
    /// writer is buffered internally ([`io::BufWriter`]) — callers can
    /// hand over a raw `File` without paying a syscall per span.
    pub fn write_chrome_trace<W: Write>(
        &self,
        out: W,
        track_names: impl Fn(ResourceId) -> String,
        name_of: impl Fn(&T) -> String,
        category_of: impl Fn(&T) -> &'static str,
    ) -> io::Result<()> {
        self.write_chrome_trace_with_instants(out, track_names, name_of, category_of, &[])
    }

    /// [`Trace::write_chrome_trace`] plus process-scoped *instant*
    /// events (`"ph": "i"`, global scope): point-in-time markers such
    /// as fault-injection edges or plan-splice epochs, so perturbed
    /// traces stay visually debuggable — each marker renders as a
    /// vertical line across every track in `chrome://tracing` /
    /// Perfetto. Each instant is `(time, name, category)`.
    pub fn write_chrome_trace_with_instants<W: Write>(
        &self,
        out: W,
        track_names: impl Fn(ResourceId) -> String,
        name_of: impl Fn(&T) -> String,
        category_of: impl Fn(&T) -> &'static str,
        instants: &[(SimTime, String, &'static str)],
    ) -> io::Result<()> {
        let mut out = io::BufWriter::new(out);
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        writeln!(out, "[")?;
        // Track metadata, one per resource seen in the trace.
        let mut seen: Vec<ResourceId> = self.spans.iter().map(|s| s.resource).collect();
        seen.sort();
        seen.dedup();
        let mut first = true;
        for rid in &seen {
            if !first {
                writeln!(out, ",")?;
            }
            first = false;
            write!(
                out,
                "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                rid.0,
                escape(&track_names(*rid))
            )?;
        }
        for s in &self.spans {
            if !first {
                writeln!(out, ",")?;
            }
            first = false;
            let ts = s.start.as_nanos() as f64 / 1e3;
            let dur = (s.end - s.start).as_nanos() as f64 / 1e3;
            write!(
                out,
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{ts},\"dur\":{dur}}}",
                escape(&name_of(&s.tag)),
                category_of(&s.tag),
                s.resource.0
            )?;
        }
        for (at, name, cat) in instants {
            if !first {
                writeln!(out, ",")?;
            }
            first = false;
            let ts = at.as_nanos() as f64 / 1e3;
            write!(
                out,
                "  {{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"g\",\
                 \"pid\":0,\"tid\":0,\"ts\":{ts}}}",
                escape(name),
            )?;
        }
        writeln!(out, "\n]")?;
        out.flush()
    }

    /// [`Trace::write_chrome_trace`] straight to a file path.
    pub fn write_chrome_trace_file(
        &self,
        path: impl AsRef<Path>,
        track_names: impl Fn(ResourceId) -> String,
        name_of: impl Fn(&T) -> String,
        category_of: impl Fn(&T) -> &'static str,
    ) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_chrome_trace(file, track_names, name_of, category_of)
    }
}

/// The peak running sum of `(instant, delta)` occupancy events.
/// Same-instant events apply releases-first (ascending `delta`), so a
/// handoff at an instant does not count as overlap. This is the single
/// definition of a "measured peak": [`Trace::peak_concurrent`] folds
/// every key through it, and external one-pass aggregations (e.g. the
/// occupancy audit's dual keying) must use it too so measured values
/// can never drift from the trace's own semantics.
pub fn peak_of_events(mut events: Vec<(SimTime, i64)>) -> i64 {
    // Unstable sort: equal `(instant, delta)` tuples are
    // interchangeable under the running sum, and skipping the stable
    // merge buffer matters at trace scale (two entries per span).
    events.sort_unstable();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    peak
}

/// A per-resource span index over a [`Trace`], answering windowed
/// busy-time / utilization queries in `O(log s + hits)` over that
/// resource's own spans instead of a full-trace scan per call — the
/// post-run reports ask one such query per (device × wait window) and
/// per (device × measurement window).
///
/// A snapshot: spans recorded after [`Trace::index`] are not visible
/// to the index.
#[derive(Debug, Clone)]
pub struct TraceIndex {
    per_resource: BTreeMap<ResourceId, IndexedSpans>,
}

/// One resource's spans sorted by start, with the running maximum of
/// span ends alongside — `cummax_end` is nondecreasing, so "the first
/// span that can overlap a window starting at `from`" is a binary
/// search even when spans overlap each other.
#[derive(Debug, Clone, Default)]
struct IndexedSpans {
    /// `(start, end)` pairs sorted by start.
    spans: Vec<(SimTime, SimTime)>,
    /// `cummax_end[i]` = max end over `spans[..=i]`.
    cummax_end: Vec<SimTime>,
}

impl TraceIndex {
    /// Total busy time of `resource` within `[from, to)`, clipping
    /// spans that straddle the window edges. Identical semantics to
    /// [`Trace::busy_within`].
    pub fn busy_within(&self, resource: ResourceId, from: SimTime, to: SimTime) -> SimTime {
        let Some(idx) = self.per_resource.get(&resource) else {
            return SimTime::ZERO;
        };
        // Every span before `first` ends at or before `from` (the
        // running max of ends is ≤ from there), so none can overlap;
        // past `first`, stop at the first span starting at/after `to`.
        let first = idx.cummax_end.partition_point(|&end| end <= from);
        let mut acc = SimTime::ZERO;
        for &(start, end) in &idx.spans[first..] {
            if start >= to {
                break;
            }
            let lo = start.max(from);
            let hi = end.min(to);
            if hi > lo {
                acc += hi - lo;
            }
        }
        acc
    }

    /// Utilization of `resource` within `[from, to)`; 0 for an empty
    /// window. Identical semantics to [`Trace::utilization_within`].
    pub fn utilization_within(&self, resource: ResourceId, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.busy_within(resource, from, to).as_secs() / (to - from).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Tag {
        Fwd,
        Bwd,
    }

    #[test]
    fn busy_time_clips_to_window() {
        let mut tr = Trace::new();
        let r = ResourceId(0);
        tr.record(r, SimTime::from_nanos(0), SimTime::from_nanos(10), Tag::Fwd);
        tr.record(
            r,
            SimTime::from_nanos(20),
            SimTime::from_nanos(30),
            Tag::Bwd,
        );
        // Window [5, 25) clips both spans to 5ns each.
        let busy = tr.busy_within(r, SimTime::from_nanos(5), SimTime::from_nanos(25));
        assert_eq!(busy, SimTime::from_nanos(10));
    }

    #[test]
    fn utilization_within_window() {
        let mut tr = Trace::new();
        let r = ResourceId(1);
        tr.record(r, SimTime::from_nanos(0), SimTime::from_nanos(50), Tag::Fwd);
        let u = tr.utilization_within(r, SimTime::ZERO, SimTime::from_nanos(100));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(tr.utilization_within(r, SimTime::ZERO, SimTime::ZERO), 0.0);
    }

    #[test]
    fn other_resources_ignored() {
        let mut tr = Trace::new();
        tr.record(
            ResourceId(0),
            SimTime::ZERO,
            SimTime::from_nanos(10),
            Tag::Fwd,
        );
        let busy = tr.busy_within(ResourceId(1), SimTime::ZERO, SimTime::from_nanos(10));
        assert_eq!(busy, SimTime::ZERO);
    }

    #[test]
    fn chrome_trace_format() {
        let mut tr = Trace::new();
        tr.record(
            ResourceId(0),
            SimTime::from_micros(1),
            SimTime::from_micros(3),
            Tag::Fwd,
        );
        tr.record(
            ResourceId(2),
            SimTime::from_micros(2),
            SimTime::from_micros(6),
            Tag::Bwd,
        );
        let mut buf = Vec::new();
        tr.write_chrome_trace(
            &mut buf,
            |r| format!("res{}", r.0),
            |t| format!("{t:?}"),
            |t| match t {
                Tag::Fwd => "forward",
                Tag::Bwd => "backward",
            },
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        // Valid JSON array shape with metadata and complete events.
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"name\":\"res0\""));
        assert!(s.contains("\"name\":\"res2\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"cat\":\"forward\""));
        assert!(s.contains("\"ts\":1") && s.contains("\"dur\":2"));
        assert!(s.contains("\"tid\":2") && s.contains("\"dur\":4"));
        // One metadata event per distinct resource + one per span.
        assert_eq!(s.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(s.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn chrome_trace_instant_events() {
        let mut tr = Trace::new();
        tr.record(
            ResourceId(0),
            SimTime::from_micros(1),
            SimTime::from_micros(3),
            Tag::Fwd,
        );
        let mut buf = Vec::new();
        tr.write_chrome_trace_with_instants(
            &mut buf,
            |r| format!("res{}", r.0),
            |t| format!("{t:?}"),
            |_| "forward",
            &[
                (SimTime::from_micros(2), "fault: gpu1 x1.3".into(), "fault"),
                (SimTime::from_micros(5), "splice: epoch 1".into(), "epoch"),
            ],
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_start().starts_with('[') && s.trim_end().ends_with(']'));
        assert_eq!(s.matches("\"ph\":\"i\"").count(), 2);
        assert!(s.contains("\"name\":\"fault: gpu1 x1.3\"") && s.contains("\"ts\":2"));
        assert!(s.contains("\"cat\":\"epoch\"") && s.contains("\"ts\":5"));
    }

    #[test]
    fn index_matches_full_scan_queries() {
        // Overlapping spans, out-of-order recording, multiple
        // resources: the index must answer exactly like the scans.
        let mut tr = Trace::new();
        let (a, b) = (ResourceId(0), ResourceId(7));
        tr.record(
            a,
            SimTime::from_nanos(20),
            SimTime::from_nanos(90),
            Tag::Fwd,
        );
        tr.record(a, SimTime::from_nanos(0), SimTime::from_nanos(10), Tag::Fwd);
        tr.record(a, SimTime::from_nanos(5), SimTime::from_nanos(8), Tag::Bwd);
        tr.record(
            b,
            SimTime::from_nanos(40),
            SimTime::from_nanos(60),
            Tag::Bwd,
        );
        let idx = tr.index();
        for r in [a, b, ResourceId(3)] {
            for from in [0u64, 5, 9, 30, 95] {
                for to in [0u64, 7, 25, 60, 100] {
                    let (from, to) = (SimTime::from_nanos(from), SimTime::from_nanos(to));
                    assert_eq!(
                        idx.busy_within(r, from, to),
                        tr.busy_within(r, from, to),
                        "res {r:?} window {from}..{to}"
                    );
                    assert_eq!(
                        idx.utilization_within(r, from, to).to_bits(),
                        tr.utilization_within(r, from, to).to_bits(),
                        "res {r:?} window {from}..{to}"
                    );
                }
            }
        }
    }

    #[test]
    fn peak_concurrent_counts_overlap_and_handoffs() {
        let mut tr = Trace::new();
        let r = ResourceId(0);
        // Three "holders" keyed by resource: +1 at start, -1 at end.
        tr.record(r, SimTime::from_nanos(0), SimTime::from_nanos(10), Tag::Fwd);
        tr.record(r, SimTime::from_nanos(5), SimTime::from_nanos(15), Tag::Fwd);
        // A handoff: starts exactly when the second ends.
        tr.record(
            r,
            SimTime::from_nanos(15),
            SimTime::from_nanos(20),
            Tag::Fwd,
        );
        let peaks = tr.peak_concurrent(|s| vec![(s.resource, s.start, 1), (s.resource, s.end, -1)]);
        // Spans 1 and 2 overlap (peak 2); the handoff does not add.
        assert_eq!(peaks.get(&r), Some(&2));
        // A key with no events is absent.
        assert!(!peaks.contains_key(&ResourceId(9)));
    }

    #[test]
    fn tag_queries() {
        let mut tr = Trace::new();
        let r = ResourceId(0);
        tr.record(r, SimTime::from_nanos(0), SimTime::from_nanos(10), Tag::Fwd);
        tr.record(
            r,
            SimTime::from_nanos(10),
            SimTime::from_nanos(25),
            Tag::Bwd,
        );
        tr.record(
            r,
            SimTime::from_nanos(25),
            SimTime::from_nanos(30),
            Tag::Fwd,
        );
        assert_eq!(tr.total_where(|t| *t == Tag::Fwd), SimTime::from_nanos(15));
        assert_eq!(tr.count_where(|t| *t == Tag::Bwd), 1);
        assert_eq!(tr.len(), 3);
    }
}
