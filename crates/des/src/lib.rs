//! A small deterministic discrete-event simulation (DES) engine.
//!
//! The HetPipe paper evaluates on real hardware; this reproduction
//! replaces the hardware with an analytic model driven by a discrete-event
//! simulation. The engine is deliberately minimal and fully
//! deterministic:
//!
//! - [`time`] — fixed-point simulated time ([`SimTime`], integer
//!   nanoseconds) so that event ordering never depends on float rounding.
//! - [`event`] — a priority queue with total `(time, sequence)` ordering:
//!   ties are broken by insertion order, which makes every run
//!   reproducible bit-for-bit.
//! - [`engine`] — the simulation driver: schedule events, pop them in
//!   order, let a handler schedule more.
//! - [`resource`] — serially-reusable timeline resources (a GPU, a NIC)
//!   with first-come-first-served reservation and busy-time accounting.
//! - [`trace`] — span recording for utilization and waiting/idle-time
//!   reports (feeds the paper's Figure 3 GPU-utilization plots and the
//!   Section 8.4 synchronization-overhead analysis).
//! - [`bounds`] — the measured / structural / declared occupancy-bound
//!   triple shared by the trace audit and the static schedule verifier
//!   (`hetpipe-verify`), with the `measured ≤ structural ≤ declared`
//!   soundness predicate.
//! - [`footprint`] — declared read/write resource footprints per event
//!   class, with per-resource ownership (VW-private / parameter-server
//!   / external): the vocabulary `hetpipe-verify`'s VW-isolation pass
//!   judges dependency edges against.

pub mod bounds;
pub mod engine;
pub mod event;
pub mod footprint;
pub mod resource;
pub mod time;
pub mod trace;

pub use bounds::{check_bounds, BoundEntity, OccupancyBound};
pub use engine::{Engine, EngineCore};
pub use event::EventQueue;
pub use footprint::{Footprint, FootprintResource, Owner, RateKind};
pub use resource::{Resource, ResourceId, ResourcePool};
pub use time::SimTime;
pub use trace::{peak_of_events, Span, Trace, TraceIndex};
