//! Declared read/write resource footprints — the vocabulary the
//! static isolation pass speaks.
//!
//! The ROADMAP's fleet-scale direction rests on a decomposition claim:
//! virtual workers interact *only* through parameter-server push/pull,
//! so each VW's event stream can run on its own engine and synchronize
//! conservatively at WSP gates. Proving that claim statically
//! (`hetpipe-verify`'s isolation pass) needs a shared language for
//! *what state an event touches*: every event class declares a
//! [`Footprint`] — the [`FootprintResource`]s it reads and writes —
//! and every resource has an [`Owner`] that decides which engine may
//! host it.
//!
//! The ownership discipline is the whole theorem:
//!
//! - [`Owner::Vw`] resources (execution slots, activation stashes,
//!   stage boundary channels, weight buffers) are keyed by their
//!   virtual worker. Two different VWs can never name the same
//!   VW-owned resource, so any dependency between their events must
//!   flow through something else.
//! - [`Owner::ParameterServer`] resources ([`FootprintResource::PsWave`])
//!   are the *only* legal something else: a wave cell written by every
//!   worker's push and read by every worker's pull gate.
//! - [`Owner::External`] resources ([`FootprintResource::Rate`]) are
//!   written by the world, not by any VW event: fault-script rate
//!   edges retune a GPU's or NIC's service rate. They carry no
//!   VW-to-VW information, which is why a fault script can simply be
//!   replicated into every per-VW engine.
//!
//! This module is deliberately dependency-free data (like
//! [`crate::bounds`]): the schedule crate and the runtime declare
//! footprints in this vocabulary, and the verifier judges dependency
//! edges against them, without any of the three depending on each
//! other.

use std::fmt;

/// Which engine owns a resource under the per-VW decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// Private to one virtual worker's engine.
    Vw(usize),
    /// Shared through the parameter server — the only legal cross-VW
    /// channel.
    ParameterServer,
    /// Written by the environment (fault scripts), read by no event's
    /// dependency logic: safe to replicate into every engine.
    External,
}

/// Which hardware timeline a [`FootprintResource::Rate`] register
/// retunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RateKind {
    /// A GPU's compute service rate.
    Gpu,
    /// A NIC's transfer service rate.
    Nic,
}

/// One nameable piece of simulation state an event can read or write.
///
/// (Distinct from [`crate::resource::Resource`], the *timeline*
/// resource of the engine: this is the static-analysis name of a state
/// cell, not a reservable serial device.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FootprintResource {
    /// The serial execution slot of one execution unit (a virtual
    /// stage, or a physical GPU for composite schedules) — what
    /// program-order edges serialize on.
    ExecUnit {
        /// Virtual worker.
        vw: usize,
        /// Execution unit within the VW (stage index, or GPU index
        /// for composite per-GPU streams).
        unit: usize,
    },
    /// The activation stash of one stage (forward fills it, backward
    /// drains it, recompute rebuilds it).
    Activations {
        /// Virtual worker.
        vw: usize,
        /// Virtual stage.
        stage: usize,
    },
    /// The boundary channel between `stage` and `stage + 1`:
    /// activations flow up it (forward), gradients flow back down it
    /// (backward).
    Boundary {
        /// Virtual worker.
        vw: usize,
        /// The lower stage of the `stage ↔ stage + 1` boundary.
        stage: usize,
    },
    /// The weight buffers of one stage (gates refresh them, computes
    /// read them, backwards accumulate gradients into them).
    Weights {
        /// Virtual worker.
        vw: usize,
        /// Virtual stage.
        stage: usize,
    },
    /// The parameter server's cell for one wave's aggregated update —
    /// the sole [`Owner::ParameterServer`] resource.
    PsWave {
        /// WSP wave index.
        wave: u64,
    },
    /// The service-rate register of a GPU or NIC — what fault-script
    /// rate edges write.
    Rate {
        /// GPU or NIC.
        kind: RateKind,
        /// Cluster device / node index.
        index: usize,
    },
}

impl FootprintResource {
    /// The owner of this resource under the per-VW decomposition.
    pub fn owner(&self) -> Owner {
        match *self {
            FootprintResource::ExecUnit { vw, .. }
            | FootprintResource::Activations { vw, .. }
            | FootprintResource::Boundary { vw, .. }
            | FootprintResource::Weights { vw, .. } => Owner::Vw(vw),
            FootprintResource::PsWave { .. } => Owner::ParameterServer,
            FootprintResource::Rate { .. } => Owner::External,
        }
    }
}

impl fmt::Display for FootprintResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FootprintResource::ExecUnit { vw, unit } => write!(f, "vw{vw} exec-unit {unit}"),
            FootprintResource::Activations { vw, stage } => {
                write!(f, "vw{vw} activations s{stage}")
            }
            FootprintResource::Boundary { vw, stage } => {
                write!(f, "vw{vw} boundary s{stage}↔s{}", stage + 1)
            }
            FootprintResource::Weights { vw, stage } => write!(f, "vw{vw} weights s{stage}"),
            FootprintResource::PsWave { wave } => write!(f, "PS wave {wave}"),
            FootprintResource::Rate {
                kind: RateKind::Gpu,
                index,
            } => write!(f, "rate gpu{index}"),
            FootprintResource::Rate {
                kind: RateKind::Nic,
                index,
            } => write!(f, "rate nic{index}"),
        }
    }
}

/// The declared read/write set of one event class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Resources the event reads.
    pub reads: Vec<FootprintResource>,
    /// Resources the event writes.
    pub writes: Vec<FootprintResource>,
}

impl Footprint {
    /// Every resource the footprint touches (reads then writes,
    /// duplicates preserved — callers compare by membership).
    pub fn touches(&self) -> impl Iterator<Item = FootprintResource> + '_ {
        self.reads.iter().chain(self.writes.iter()).copied()
    }

    /// The resources on which `self` happening-before `other` is a
    /// genuine dependence: flow (`self` writes, `other` reads), output
    /// (both write), and anti (`self` reads, `other` writes)
    /// conflicts. A dependency edge between two events is *explained*
    /// by their footprints iff this is non-empty.
    pub fn conflicts_with(&self, other: &Footprint) -> Vec<FootprintResource> {
        let mut out = Vec::new();
        for &w in &self.writes {
            if (other.reads.contains(&w) || other.writes.contains(&w)) && !out.contains(&w) {
                out.push(w);
            }
        }
        for &r in &self.reads {
            if other.writes.contains(&r) && !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_partition() {
        assert_eq!(
            FootprintResource::ExecUnit { vw: 2, unit: 1 }.owner(),
            Owner::Vw(2)
        );
        assert_eq!(
            FootprintResource::Weights { vw: 0, stage: 3 }.owner(),
            Owner::Vw(0)
        );
        assert_eq!(
            FootprintResource::PsWave { wave: 7 }.owner(),
            Owner::ParameterServer
        );
        assert_eq!(
            FootprintResource::Rate {
                kind: RateKind::Nic,
                index: 1
            }
            .owner(),
            Owner::External
        );
    }

    #[test]
    fn conflicts_cover_flow_output_and_anti() {
        let a = FootprintResource::Activations { vw: 0, stage: 1 };
        let b = FootprintResource::Boundary { vw: 0, stage: 1 };
        let c = FootprintResource::Weights { vw: 0, stage: 1 };
        // Flow: writer → reader.
        let w = Footprint {
            reads: vec![],
            writes: vec![a],
        };
        let r = Footprint {
            reads: vec![a],
            writes: vec![],
        };
        assert_eq!(w.conflicts_with(&r), vec![a]);
        // Anti: reader → writer.
        assert_eq!(r.conflicts_with(&w), vec![a]);
        // Output: writer → writer.
        assert_eq!(w.conflicts_with(&w), vec![a]);
        // Disjoint footprints conflict on nothing.
        let other = Footprint {
            reads: vec![b],
            writes: vec![c],
        };
        assert!(w.conflicts_with(&other).is_empty());
    }

    #[test]
    fn vw_keyed_resources_cannot_collide_across_vws() {
        // The structural heart of the isolation theorem: the same
        // stage's resources on two VWs are different resources.
        let mine = Footprint {
            reads: vec![FootprintResource::Boundary { vw: 0, stage: 2 }],
            writes: vec![FootprintResource::Weights { vw: 0, stage: 2 }],
        };
        let theirs = Footprint {
            reads: vec![FootprintResource::Boundary { vw: 1, stage: 2 }],
            writes: vec![FootprintResource::Weights { vw: 1, stage: 2 }],
        };
        assert!(mine.conflicts_with(&theirs).is_empty());
        // ...while the PS wave cell is one shared resource.
        let push = Footprint {
            reads: vec![],
            writes: vec![FootprintResource::PsWave { wave: 0 }],
        };
        let gate = Footprint {
            reads: vec![FootprintResource::PsWave { wave: 0 }],
            writes: vec![FootprintResource::Weights { vw: 1, stage: 0 }],
        };
        let shared = push.conflicts_with(&gate);
        assert_eq!(shared, vec![FootprintResource::PsWave { wave: 0 }]);
        assert!(shared.iter().all(|r| r.owner() == Owner::ParameterServer));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(
            FootprintResource::Boundary { vw: 1, stage: 2 }.to_string(),
            "vw1 boundary s2↔s3"
        );
        assert_eq!(
            FootprintResource::PsWave { wave: 3 }.to_string(),
            "PS wave 3"
        );
        assert_eq!(
            FootprintResource::Rate {
                kind: RateKind::Gpu,
                index: 5
            }
            .to_string(),
            "rate gpu5"
        );
    }
}
