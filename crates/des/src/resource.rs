//! Serially-reusable timeline resources.
//!
//! A [`Resource`] models hardware that can do one thing at a time — a GPU
//! executing kernels, a NIC moving bytes. Work is *reserved* on the
//! resource's timeline: a reservation starting "now" begins at
//! `max(now, free_at)` and pushes `free_at` forward, which yields
//! first-come-first-served service without an explicit queue (callers
//! reserve in event order, and the event queue is deterministic).
//!
//! Busy time is accumulated for utilization reports (Figure 3 of the
//! paper plots per-partition GPU utilization).

use crate::time::SimTime;

/// Index of a resource within a [`ResourcePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// A serially-reusable resource with FCFS timeline reservation.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name for reports (e.g. `"gpu3"`, `"nic0"`).
    pub name: String,
    free_at: SimTime,
    busy: SimTime,
    reservations: u64,
    /// Service-rate multiplier (1.0 = nominal). Fault injection models
    /// a throttled GPU or degraded link by lowering the rate; callers
    /// scale nominal durations through [`Resource::scaled`] before
    /// reserving. The rate applies at *reservation time*: work already
    /// on the timeline keeps the duration it was granted with.
    rate: f64,
    /// The known piecewise-constant rate timeline (sorted rate edges),
    /// when the caller can declare it up front
    /// ([`Resource::set_rate_schedule`]). With a timeline installed,
    /// [`Resource::duration_from`] *integrates* nominal work across
    /// the windows the reservation actually spans — the rate-edge
    /// lifecycle appearing/disappearing resources need: a resource
    /// that is out (rate 0) for a window and then returns delays the
    /// work by the outage instead of freezing a reservation-time
    /// duration forever. Before the first edge the rate is nominal.
    edges: Vec<(SimTime, f64)>,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            reservations: 0,
            rate: 1.0,
            edges: Vec::new(),
        }
    }

    /// Current service-rate multiplier (1.0 = nominal speed).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Sets the service-rate multiplier. `0.5` means work takes twice
    /// its nominal duration; `0.0` (or any non-positive value) models a
    /// lost resource — [`Resource::scaled`] returns an effectively
    /// unreachable duration, so work reserved on it never completes
    /// within any finite horizon.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
    }

    /// Scales a nominal duration by the current rate. Exact identity
    /// at the nominal rate (the common case pays no float round-trip);
    /// non-positive rates clamp to a quarter of [`SimTime::MAX`] so
    /// that downstream additions saturate instead of wrapping.
    pub fn scaled(&self, nominal: SimTime) -> SimTime {
        if self.rate == 1.0 {
            return nominal;
        }
        if self.rate <= 0.0 {
            return SimTime::from_nanos(u64::MAX / 4);
        }
        let ns = (nominal.as_nanos() as f64 / self.rate).min(u64::MAX as f64 / 4.0);
        SimTime::from_nanos(ns as u64)
    }

    /// Installs the full known rate timeline: sorted `(at, rate)`
    /// edges, each in effect from its instant until the next edge
    /// (nominal 1.0 before the first). Replaces any prior schedule.
    ///
    /// This is the declaration half of the rate-edge *lifecycle* for
    /// appearing and disappearing resources: a GPU leased away and
    /// later re-granted is a `(t_out, 0.0)` / `(t_back, 1.0)` edge
    /// pair, and work reserved across the outage ends after the
    /// resource returns ([`Resource::duration_from`]) instead of
    /// keeping a reservation-time duration that never completes.
    pub fn set_rate_schedule(&mut self, mut edges: Vec<(SimTime, f64)>) {
        edges.sort_by_key(|&(at, _)| at);
        // Same-instant edges: the last one wins.
        edges.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        self.edges = edges;
    }

    /// The scheduled rate in effect at `t` (nominal before the first
    /// edge; [`Resource::rate`] when no schedule is installed).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self.edges.iter().rev().find(|&&(at, _)| at <= t) {
            Some(&(_, rate)) => rate,
            None if self.edges.is_empty() => self.rate,
            None => 1.0,
        }
    }

    /// How long `nominal` work starting at `start` takes under the
    /// installed rate schedule: nominal work is *integrated* over the
    /// piecewise-constant rate windows the job actually spans. A
    /// rate-0 window contributes pure delay; work that never meets a
    /// positive window again clamps to a quarter of [`SimTime::MAX`]
    /// (saturating downstream, like [`Resource::scaled`]). Without a
    /// schedule this falls back to reservation-time scaling. Work
    /// confined to nominal-rate windows is an exact identity (the
    /// nanosecond counts stay below 2^53, so the f64 walk is exact).
    pub fn duration_from(&self, start: SimTime, nominal: SimTime) -> SimTime {
        if self.edges.is_empty() {
            return self.scaled(nominal);
        }
        const DEAD: u64 = u64::MAX / 4;
        let start_ns = start.as_nanos() as f64;
        let mut work = nominal.as_nanos() as f64;
        if work <= 0.0 {
            return SimTime::ZERO;
        }
        let mut t = start_ns;
        let mut next_i = self
            .edges
            .iter()
            .rposition(|&(at, _)| (at.as_nanos() as f64) <= t)
            .map_or(0, |i| i + 1);
        loop {
            let rate = if next_i == 0 {
                1.0
            } else {
                self.edges[next_i - 1].1
            };
            let next = self.edges.get(next_i).map(|&(at, _)| at.as_nanos() as f64);
            if rate > 0.0 {
                let fits = match next {
                    Some(n) => work <= (n - t) * rate,
                    None => true,
                };
                if fits {
                    let dur = (t + work / rate - start_ns).min(DEAD as f64);
                    return SimTime::from_nanos(dur as u64);
                }
                let n = next.expect("unfit work implies a next edge");
                work -= (n - t) * rate;
                t = n;
            } else {
                match next {
                    Some(n) => t = n,
                    // Dead with no later edge: never completes.
                    None => return SimTime::from_nanos(DEAD),
                }
            }
            next_i += 1;
        }
    }

    /// Reserves `nominal` work starting no earlier than `earliest`,
    /// with the duration derived from the granted start through
    /// [`Resource::duration_from`] — the schedule-aware form of
    /// [`Resource::reserve`]. Returns `(start, end)`.
    pub fn reserve_work(&mut self, earliest: SimTime, nominal: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(earliest);
        let duration = self.duration_from(start, nominal);
        self.reserve(start, duration)
    }

    /// Reserves the resource for `duration`, starting no earlier than
    /// `earliest`. Returns `(start, end)` of the granted slot.
    ///
    /// Reservations are granted back-to-back in call order, which is the
    /// FIFO service discipline the paper's partition scheduler mandates
    /// (Section 4, condition 3).
    pub fn reserve(&mut self, earliest: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(earliest);
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        self.reservations += 1;
        (start, end)
    }

    /// The instant the resource becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total reserved (busy) time.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of reservations granted.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Busy fraction over the horizon `[0, horizon)`.
    ///
    /// Returns 0 for a zero horizon. Values may exceed 1.0 if
    /// reservations extend past the horizon (callers normally pass the
    /// final simulation time).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        self.busy.as_secs() / horizon.as_secs()
    }
}

/// A dense pool of resources addressed by [`ResourceId`].
#[derive(Debug, Clone, Default)]
pub struct ResourcePool {
    resources: Vec<Resource>,
}

impl ResourcePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource and returns its ID.
    pub fn add(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId(self.resources.len());
        self.resources.push(resource);
        id
    }

    /// Shared access to a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Exclusive access to a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: ResourceId) -> &mut Resource {
        &mut self.resources[id.0]
    }

    /// Number of resources in the pool.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Iterates over `(id, resource)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &Resource)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations() {
        let mut gpu = Resource::new("gpu0");
        let (s1, e1) = gpu.reserve(SimTime::ZERO, SimTime::from_nanos(10));
        assert_eq!((s1, e1), (SimTime::ZERO, SimTime::from_nanos(10)));
        // Requested at t=5 but the GPU is busy until t=10.
        let (s2, e2) = gpu.reserve(SimTime::from_nanos(5), SimTime::from_nanos(10));
        assert_eq!((s2, e2), (SimTime::from_nanos(10), SimTime::from_nanos(20)));
        assert_eq!(gpu.busy_time(), SimTime::from_nanos(20));
        assert_eq!(gpu.reservations(), 2);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut gpu = Resource::new("gpu0");
        gpu.reserve(SimTime::ZERO, SimTime::from_nanos(10));
        // Next request arrives after an idle gap.
        let (s, _) = gpu.reserve(SimTime::from_nanos(100), SimTime::from_nanos(10));
        assert_eq!(s, SimTime::from_nanos(100));
        assert_eq!(gpu.busy_time(), SimTime::from_nanos(20));
        let util = gpu.utilization(SimTime::from_nanos(110));
        assert!((util - 20.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_zero_horizon() {
        let gpu = Resource::new("gpu0");
        assert_eq!(gpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn rate_scales_durations() {
        let mut gpu = Resource::new("gpu0");
        let d = SimTime::from_nanos(1000);
        // Nominal rate is an exact identity.
        assert_eq!(gpu.rate(), 1.0);
        assert_eq!(gpu.scaled(d), d);
        // Half speed doubles the duration.
        gpu.set_rate(0.5);
        assert_eq!(gpu.scaled(d), SimTime::from_nanos(2000));
        // A lost resource yields an unreachable duration that still
        // saturates under addition.
        gpu.set_rate(0.0);
        let dead = gpu.scaled(d);
        assert!(dead > SimTime::from_secs(1e9));
        assert!(SimTime::MAX + dead == SimTime::MAX);
        // Recovery restores the identity.
        gpu.set_rate(1.0);
        assert_eq!(gpu.scaled(d), d);
    }

    #[test]
    fn schedule_integration_spans_rate_windows() {
        let mut gpu = Resource::new("gpu0");
        // x2 slowdown over [100, 200), nominal elsewhere.
        gpu.set_rate_schedule(vec![
            (SimTime::from_nanos(100), 0.5),
            (SimTime::from_nanos(200), 1.0),
        ]);
        // Entirely inside a nominal window: exact identity.
        assert_eq!(
            gpu.duration_from(SimTime::ZERO, SimTime::from_nanos(50)),
            SimTime::from_nanos(50)
        );
        // Entirely inside the slow window: plain scaling.
        assert_eq!(
            gpu.duration_from(SimTime::from_nanos(100), SimTime::from_nanos(40)),
            SimTime::from_nanos(80)
        );
        // Spanning the onset: 60 ns of work at rate 1, the remaining
        // 40 ns at rate 0.5 → 60 + 80 = 140 ns.
        assert_eq!(
            gpu.duration_from(SimTime::from_nanos(40), SimTime::from_nanos(100)),
            SimTime::from_nanos(140)
        );
        // Spanning the restore edge: 25 ns of nominal work done in the
        // slow window's last 50 ns, the remaining 75 at rate 1.
        assert_eq!(
            gpu.duration_from(SimTime::from_nanos(150), SimTime::from_nanos(100)),
            SimTime::from_nanos(125)
        );
    }

    #[test]
    fn outage_window_delays_instead_of_wedging() {
        let mut gpu = Resource::new("gpu0");
        // Leased away over [100, 300), granted back after.
        gpu.set_rate_schedule(vec![
            (SimTime::from_nanos(100), 0.0),
            (SimTime::from_nanos(300), 1.0),
        ]);
        // Work starting inside the outage waits it out, then runs.
        assert_eq!(
            gpu.duration_from(SimTime::from_nanos(150), SimTime::from_nanos(40)),
            SimTime::from_nanos(190)
        );
        // Work crossing into the outage is split around it.
        assert_eq!(
            gpu.duration_from(SimTime::from_nanos(80), SimTime::from_nanos(40)),
            SimTime::from_nanos(240)
        );
        // The paired reservation form agrees and keeps FCFS.
        let (s, e) = gpu.reserve_work(SimTime::from_nanos(150), SimTime::from_nanos(40));
        assert_eq!((s, e), (SimTime::from_nanos(150), SimTime::from_nanos(340)));
        // An outage with no recovery edge never completes (saturating).
        let mut dead = Resource::new("gpu1");
        dead.set_rate_schedule(vec![(SimTime::from_nanos(100), 0.0)]);
        let d = dead.duration_from(SimTime::from_nanos(150), SimTime::from_nanos(1));
        assert!(d > SimTime::from_secs(1e9));
        assert!(SimTime::MAX + d == SimTime::MAX);
        // rate_at reads the schedule; without one it reads the knob.
        assert_eq!(dead.rate_at(SimTime::from_nanos(50)), 1.0);
        assert_eq!(dead.rate_at(SimTime::from_nanos(100)), 0.0);
        let plain = Resource::new("gpu2");
        assert_eq!(plain.rate_at(SimTime::from_nanos(5)), 1.0);
    }

    #[test]
    fn empty_schedule_falls_back_to_reservation_time_rate() {
        let mut gpu = Resource::new("gpu0");
        gpu.set_rate(0.5);
        assert_eq!(
            gpu.duration_from(SimTime::ZERO, SimTime::from_nanos(100)),
            SimTime::from_nanos(200)
        );
        let (s, e) = gpu.reserve_work(SimTime::ZERO, SimTime::from_nanos(100));
        assert_eq!((s, e), (SimTime::ZERO, SimTime::from_nanos(200)));
    }

    #[test]
    fn pool_addressing() {
        let mut pool = ResourcePool::new();
        let a = pool.add(Resource::new("a"));
        let b = pool.add(Resource::new("b"));
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        pool.get_mut(b)
            .reserve(SimTime::ZERO, SimTime::from_nanos(5));
        assert_eq!(pool.get(a).busy_time(), SimTime::ZERO);
        assert_eq!(pool.get(b).busy_time(), SimTime::from_nanos(5));
        let names: Vec<&str> = pool.iter().map(|(_, r)| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
