//! HetPipe: heterogeneous pipelined-model-parallel + data-parallel DNN training.
//!
//! This is the facade crate of the HetPipe workspace, a from-scratch Rust
//! reproduction of *"HetPipe: Enabling Large DNN Training on (Whimpy)
//! Heterogeneous GPU Clusters through Integration of Pipelined Model
//! Parallelism and Data Parallelism"* (Park et al., USENIX ATC 2020).
//!
//! It re-exports the component crates:
//!
//! - [`cluster`] — heterogeneous GPU cluster substrate (Table 1 testbed,
//!   PCIe/InfiniBand transfer models).
//! - [`des`] — deterministic discrete-event simulation engine.
//! - [`model`] — DNN model graphs and the ResNet-152 / VGG-19 zoo with
//!   analytic compute/memory profiles.
//! - [`partition`] — the heterogeneity- and memory-aware min–max model
//!   partitioner (the paper's CPLEX formulation, solved exactly).
//! - [`core`] — the HetPipe system itself: virtual workers, pipelined
//!   execution, the Wave Synchronous Parallel (WSP) model, parameter
//!   servers, resource-allocation policies, and end-to-end simulation.
//! - [`allreduce`] — the Horovod-like all-reduce data-parallel baseline.
//! - [`train`] — a real (threaded, lock-based) WSP/SSP/BSP/ASP parameter
//!   server and SGD trainer used for convergence experiments.
//!
//! - [`plansvc`] — planner-as-a-service: a concurrent typed
//!   request/reply plan server over a sharded, sequence-versioned
//!   plan cache with warm-start neighbor seeding; fault-driven
//!   replans publish as cache-invalidating writes.
//! - [`runtime`] — fault-aware *dynamic* execution: deterministic
//!   fault/straggler injection scripts, a trace-fed runtime monitor
//!   (per-stage EWMA of observed vs planned durations), and reactive
//!   policies — `SkipStraggler` (bounded composite-stream reorder)
//!   and `Replan` (live re-partitioning from observed costs, spliced
//!   at wave boundaries with per-epoch occupancy audits).
//! - [`schedule`] — pluggable static pipeline schedules (the paper's
//!   wave schedule, GPipe fill-drain, PipeDream 1F1B, interleaved
//!   1F1B) reified as per-stage op streams, with per-schedule peak
//!   memory accounting that the executor *enforces* at dispatch time
//!   (trace-audited measured ≤ declared), plus boundary-only
//!   activation recomputation as an explicit compute-vs-memory knob.
//! - [`verify`] — static verification: machine-checked
//!   deadlock-freedom certificates and structural occupancy bounds
//!   from the schedules' committed op queues, VW-isolation
//!   certificates (every dependency edge explained by declared
//!   resource footprints, cross-worker traffic confined to the PS
//!   push→gate coupling) with closed-form lookahead witnesses,
//!   exhaustive WSP staleness proofs, and an in-tree
//!   exhaustive-interleaving model checker with sleep-set
//!   partial-order reduction proving the plan caches' MatchSeq
//!   invariant and the per-VW gate protocol (the `verify_all` CI
//!   gate sweeps the standing matrix through all of these).
//!
//! # Quickstart
//!
//! ```
//! use hetpipe::prelude::*;
//!
//! // The paper's 16-GPU testbed, partitioned by the Equal-Distribution
//! // policy into 4 virtual workers with local parameter placement.
//! let cluster = Cluster::paper_testbed();
//! let model = vgg19(32);
//! let config = SystemConfig {
//!     policy: AllocationPolicy::EqualDistribution,
//!     placement: Placement::Local,
//!     staleness_bound: 0,
//!     ..SystemConfig::default()
//! };
//! let report = HetPipeSystem::build(&cluster, &model, &config)
//!     .expect("feasible configuration")
//!     .run(SimTime::from_secs(60.0));
//! assert!(report.throughput_images_per_sec() > 0.0);
//! ```
//!
//! # Choosing a pipeline schedule
//!
//! The executor is generic over the pipeline schedule; the paper's
//! wave schedule is the default, and the GPipe / PipeDream / Megatron
//! alternatives plug in through [`SystemConfig::schedule`] — same
//! cluster, same partitioner, same WSP synchronization:
//!
//! ```
//! use hetpipe::prelude::*;
//!
//! let cluster = Cluster::paper_testbed();
//! let model = vgg19(32);
//! let config = SystemConfig {
//!     schedule: Schedule::OneFOneB, // or FillDrain, HetPipeWave, or
//!                                   // Interleaved1F1B { chunks: 2,
//!                                   //   composite: true } — Megatron's
//!                                   // composite per-GPU chunk order
//!                                   // (composite: false keeps the
//!                                   // depth-expanded variant)
//!     ..SystemConfig::default()
//! };
//! let sys = HetPipeSystem::build(&cluster, &model, &config).expect("feasible");
//! // Per-schedule memory accounting: peak bytes per physical GPU.
//! let peaks = sys.per_gpu_peak_bytes(0);
//! assert_eq!(peaks.len(), 4);
//! assert!(sys.run(SimTime::from_secs(30.0)).throughput_images_per_sec() > 0.0);
//! ```
//!
//! The `schedule_compare` binary in `hetpipe-bench` sweeps all five
//! schedule forms (including both interleaved variants, so the
//! composite-vs-depth-expanded fidelity delta is a standing
//! measurement) across the paper testbed, a homogeneous cluster, and
//! an all-whimpy RTX 2060 cluster, and can export per-GPU
//! `chrome://tracing` timelines (`--trace-out`).
//!
//! [`SystemConfig::schedule`]: hetpipe_core::SystemConfig

pub use hetpipe_allreduce as allreduce;
pub use hetpipe_cluster as cluster;
pub use hetpipe_core as core;
pub use hetpipe_des as des;
pub use hetpipe_fleet as fleet;
pub use hetpipe_model as model;
pub use hetpipe_partition as partition;
pub use hetpipe_plansvc as plansvc;
pub use hetpipe_runtime as runtime;
pub use hetpipe_schedule as schedule;
pub use hetpipe_train as train;
pub use hetpipe_verify as verify;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use hetpipe_allreduce::{HorovodBaseline, RingAllreduce};
    pub use hetpipe_cluster::{Cluster, DeviceId, GpuKind, LinkKind, NetworkModel, Node, NodeId};
    pub use hetpipe_core::{
        AllocationPolicy, HetPipeSystem, Placement, SyncModel, SystemConfig, SystemReport,
        VirtualWorker,
    };
    pub use hetpipe_des::SimTime;
    pub use hetpipe_model::{mlp, resnet152, resnet50, vgg19, LayerKind, ModelGraph};
    pub use hetpipe_partition::{PartitionPlan, PartitionSolver};
    pub use hetpipe_schedule::{PipelineSchedule, Schedule, ScheduleOp, WspParams};
}
